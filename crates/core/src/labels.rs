//! The canonical label library: the commutative operations the paper's
//! evaluation uses (Table II and Sec. VI).
//!
//! Each function returns a [`LabelDef`] ready to pass to
//! [`crate::MachineBuilder::register_label`]. Labels bundle an identity
//! value (used to initialize fresh U-state copies) with a reduction handler
//! (merging two partial lines), and — where gather requests make sense — a
//! splitter.
//!
//! | label | identity | reduce | split | used by |
//! |-------|----------|--------|-------|---------|
//! | [`add`] | 0 | per-word wrapping add | proportional donation | counters, kmeans, ssca2, bounded counters (genome/vacation) |
//! | [`fp_add`] | 0.0 | per-word f64 add | — | kmeans centroids |
//! | [`min`] | `u64::MAX` | per-word min | — | boruvka component union |
//! | [`max`] | 0 | per-word max | — | boruvka edge marking |
//! | [`oput`] | key `u64::MAX` | keep lower-key pair | — | boruvka min-edges, ordered puts |
//! | [`list`] | null descriptor | concatenate partial lists | donate head node | linked lists, queues, sets |

use commtm_mem::{Addr, LineData, WORDS_PER_LINE};
use commtm_protocol::{LabelDef, ReduceOps};

/// 64-bit commutative addition (the paper's `ADD` label).
///
/// A line holds eight independent counters; reducing adds them word-wise.
/// The splitter donates `ceil(value / numSharers)` of each word, which the
/// paper's bounded-counter workloads use through gather requests (Sec. IV).
pub fn add() -> LabelDef {
    LabelDef::new("ADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    })
    .with_split(|_, local, out, n| {
        for i in 0..WORDS_PER_LINE {
            let v = local[i];
            let donation = v.div_ceil(n as u64);
            out[i] = donation;
            local[i] = v - donation;
        }
    })
}

/// Commutative floating-point addition over f64 bit patterns (the paper's
/// `FP ADD` in kmeans).
///
/// Floating-point addition is only *semantically* commutative: different
/// orders round differently, which is exactly the class of operations
/// CommTM supports and strict-commutativity schemes (Coup) do not.
pub fn fp_add() -> LabelDef {
    LabelDef::new("FPADD", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            let sum = f64::from_bits(dst[i]) + f64::from_bits(src[i]);
            dst[i] = sum.to_bits();
        }
    })
}

/// 64-bit commutative minimum (the paper's `MIN`, used by boruvka to union
/// components by keeping the lower representative id).
pub fn min() -> LabelDef {
    LabelDef::new("MIN", LineData::splat(u64::MAX), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].min(src[i]);
        }
    })
}

/// 64-bit commutative maximum (the paper's `MAX`, used by boruvka to mark
/// edges added to the MST).
pub fn max() -> LabelDef {
    LabelDef::new("MAX", LineData::zeroed(), |_, dst, src| {
        for i in 0..WORDS_PER_LINE {
            dst[i] = dst[i].max(src[i]);
        }
    })
}

/// Ordered put / priority update (the paper's `OPUT`): a line holds four
/// (key, value) pairs at word pairs (0,1)..(6,7); reducing keeps the pair
/// with the lower key. The identity has all keys at `u64::MAX`.
///
/// Boruvka uses this to record the minimum-weight edge leaving each
/// component; databases use it for priority updates (Sec. VI).
pub fn oput() -> LabelDef {
    let mut identity = LineData::zeroed();
    for p in 0..WORDS_PER_LINE / 2 {
        identity[2 * p] = u64::MAX;
    }
    LabelDef::new("OPUT", identity, |_, dst, src| {
        for p in 0..WORDS_PER_LINE / 2 {
            let (k, v) = (2 * p, 2 * p + 1);
            if src[k] < dst[k] {
                dst[k] = src[k];
                dst[v] = src[v];
            }
        }
    })
}

/// Singly-linked-list descriptor (the paper's Fig. 11): word 0 is the head
/// pointer, word 1 the tail pointer, null = empty. Nodes store their `next`
/// pointer in their first word.
///
/// Each U-state copy of the descriptor represents a *partial* list;
/// reduction concatenates them by pointing the first list's tail at the
/// second's head (a real memory write through the reduction handler). The
/// splitter donates the head element, which makes dequeues gatherable
/// (Fig. 11b).
pub fn list() -> LabelDef {
    LabelDef::new("LIST", LineData::zeroed(), |ops, dst, src| {
        if src[0] == 0 {
            return;
        }
        if dst[0] == 0 {
            dst[0] = src[0];
            dst[1] = src[1];
        } else {
            // dst.tail.next = src.head; dst.tail = src.tail
            ops.write(Addr::new(dst[1]), src[0]);
            dst[1] = src[1];
        }
    })
    .with_split(|ops: &mut dyn ReduceOps, local, out, _n| {
        let head = local[0];
        if head == 0 {
            return; // nothing to donate
        }
        let next = ops.read(Addr::new(head));
        local[0] = next;
        if next == 0 {
            local[1] = 0;
        }
        ops.write(Addr::new(head), 0);
        out[0] = head;
        out[1] = head;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm_protocol::testing::{apply_reduce, MapHeap};

    fn apply(def: &LabelDef, dst: &mut LineData, src: &LineData) {
        apply_reduce(def, &mut MapHeap::new(), dst, src);
    }

    #[test]
    fn add_reduces_and_identity_is_neutral() {
        let def = add();
        let mut a = LineData::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        apply(&def, &mut a, &def.identity());
        assert_eq!(a[0], 1, "identity must be neutral");
        apply(&def, &mut a, &LineData::splat(10));
        assert_eq!(a.words(), &[11, 12, 13, 14, 15, 16, 17, 18]);
    }

    #[test]
    fn add_split_conserves_value() {
        let def = add();
        let mut local = LineData::splat(19);
        let mut out = def.identity();
        (def.split().unwrap())(&mut MapHeap::new(), &mut local, &mut out, 4);
        for i in 0..WORDS_PER_LINE {
            assert_eq!(local[i] + out[i], 19);
            assert_eq!(out[i], 5); // ceil(19/4)
        }
    }

    #[test]
    fn min_max_identities() {
        let mn = min();
        let mut a = mn.identity();
        apply(&mn, &mut a, &LineData::splat(7));
        assert_eq!(a, LineData::splat(7));
        let mx = max();
        let mut b = mx.identity();
        apply(&mx, &mut b, &LineData::splat(7));
        assert_eq!(b, LineData::splat(7));
        apply(&mx, &mut b, &LineData::splat(3));
        assert_eq!(b, LineData::splat(7));
    }

    #[test]
    fn fp_add_sums_doubles() {
        let def = fp_add();
        let mut a = LineData::zeroed();
        let mut one = LineData::zeroed();
        one[0] = 1.5f64.to_bits();
        apply(&def, &mut a, &one);
        apply(&def, &mut a, &one);
        assert_eq!(f64::from_bits(a[0]), 3.0);
        assert_eq!(f64::from_bits(a[1]), 0.0);
    }

    #[test]
    fn oput_keeps_lowest_key() {
        let def = oput();
        let mut a = def.identity();
        let mut kv = LineData::zeroed();
        kv[0] = 50;
        kv[1] = 500;
        apply(&def, &mut a, &kv);
        assert_eq!((a[0], a[1]), (50, 500));
        let mut lower = LineData::zeroed();
        lower[0] = 20;
        lower[1] = 200;
        apply(&def, &mut a, &lower);
        assert_eq!((a[0], a[1]), (20, 200));
        let mut higher = def.identity();
        higher[0] = 90;
        higher[1] = 900;
        apply(&def, &mut a, &higher);
        assert_eq!((a[0], a[1]), (20, 200), "higher key must lose");
    }

    #[test]
    fn oput_reduction_is_commutative() {
        let def = oput();
        let mk = |k: u64, v: u64| {
            let mut l = def.identity();
            l[0] = k;
            l[1] = v;
            l
        };
        let (x, y) = (mk(5, 55), mk(9, 99));
        let mut a = x;
        apply(&def, &mut a, &y);
        let mut b = y;
        apply(&def, &mut b, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn list_reduce_concatenates() {
        let def = list();
        let mut ops = MapHeap::new();
        // List 1: nodes 0x100 -> 0x200; list 2: node 0x300.
        ops.write(Addr::new(0x100), 0x200);
        ops.write(Addr::new(0x200), 0);
        ops.write(Addr::new(0x300), 0);
        let mut d1 = LineData::zeroed();
        d1[0] = 0x100;
        d1[1] = 0x200;
        let mut d2 = LineData::zeroed();
        d2[0] = 0x300;
        d2[1] = 0x300;
        (def.reduce())(&mut ops, &mut d1, &d2);
        assert_eq!((d1[0], d1[1]), (0x100, 0x300));
        assert_eq!(
            ops.read(Addr::new(0x200)),
            0x300,
            "tail stitched to donated head"
        );
        // Empty merges are no-ops both ways.
        let empty = def.identity();
        let mut d3 = d1;
        (def.reduce())(&mut ops, &mut d3, &empty);
        assert_eq!(d3, d1);
        let mut d4 = def.identity();
        (def.reduce())(&mut ops, &mut d4, &d1);
        assert_eq!(d4, d1);
    }

    #[test]
    fn list_split_donates_head() {
        let def = list();
        let mut ops = MapHeap::new();
        ops.write(Addr::new(0x100), 0x200);
        ops.write(Addr::new(0x200), 0);
        let mut local = LineData::zeroed();
        local[0] = 0x100;
        local[1] = 0x200;
        let mut out = def.identity();
        (def.split().unwrap())(&mut ops, &mut local, &mut out, 2);
        assert_eq!((out[0], out[1]), (0x100, 0x100));
        assert_eq!((local[0], local[1]), (0x200, 0x200));
        assert_eq!(ops.read(Addr::new(0x100)), 0, "donated node detached");
        // Splitting the now single-element list empties it.
        let mut out2 = def.identity();
        (def.split().unwrap())(&mut ops, &mut local, &mut out2, 2);
        assert_eq!((local[0], local[1]), (0, 0));
        // Splitting an empty list donates nothing.
        let mut out3 = def.identity();
        (def.split().unwrap())(&mut ops, &mut local, &mut out3, 2);
        assert_eq!(out3, def.identity());
    }
}
