//! The facade error type.

use std::fmt;

use commtm_sim::SimError;

/// Errors surfaced by the `commtm` public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// More labels were registered than the architecture supports (8; see
    /// paper Sec. III-D on virtualizing labels).
    TooManyLabels,
    /// The simulation failed (missing program, cycle-limit livelock).
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooManyLabels => {
                write!(f, "architecture supports at most 8 labels")
            }
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::TooManyLabels.to_string().contains("labels"));
        let e = Error::from(SimError::MissingProgram { core: 3 });
        assert!(e.to_string().contains("core 3"));
    }
}
