//! Tier A: property-checks of the algebraic label laws.
//!
//! For every [`LabelDef`] in `commtm::labels`, randomized `LineData`
//! values (and, for stateful labels, randomized [`MapHeap`]s) are pushed
//! through four laws:
//!
//! - **commutativity** — `x ⊕ y = y ⊕ x`, compared *bit-exactly* for
//!   every label: IEEE-754 addition commutes exactly, so even FP ADD must
//!   pass this one without tolerance;
//! - **associativity** — `(x ⊕ y) ⊕ z = x ⊕ (y ⊕ z)`, where FP ADD uses
//!   the tolerance carve-out (semantically but not bit-exactly
//!   associative — the class of operations the paper supports and
//!   strict-commutativity schemes like Coup do not);
//! - **identity** — `x ⊕ id = x = id ⊕ x`;
//! - **split conservation** — `split(x) = (local, out)` implies
//!   `local ⊎ out` reduces back to `x` (labels with splitters only).
//!
//! Values are compared through a per-label *materializer*: plain labels
//! compare line words, the list label walks the chain and compares the
//! node multiset plus well-formedness (termination, tail points at the
//! last node) — the canonical form two differently-ordered
//! concatenations share.

use std::collections::HashSet;

use commtm::{labels, LabelDef, LineData, WORDS_PER_LINE};
use commtm_protocol::testing::{apply_reduce, apply_split, MapHeap};
use commtm_workloads::ProbeEquality;
use proptest::TestRng;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::report::{CheckResult, Status, Tier};
use crate::VerifyOptions;

/// How a label's random values are generated and canonicalized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ValueKind {
    /// Independent integer words (add, min, max).
    Ints,
    /// f64 bit patterns (fp_add).
    Floats,
    /// Four (key, value) pairs with globally distinct keys (oput).
    OputPairs,
    /// A linked-list descriptor over heap-resident nodes (list).
    List,
}

/// One label under algebraic verification.
pub struct LabelSpec {
    name: &'static str,
    def: LabelDef,
    equality: ProbeEquality,
    kind: ValueKind,
}

impl LabelSpec {
    /// The label's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The comparison mode non-commutativity laws use (`FpTolerance` for
    /// fp_add, `Exact` otherwise). Pinned by the fp_add regression test.
    pub fn equality(&self) -> ProbeEquality {
        self.equality
    }
}

/// The six built-in labels with their generators and comparison modes.
pub fn label_specs() -> Vec<LabelSpec> {
    vec![
        LabelSpec {
            name: "add",
            def: labels::add(),
            equality: ProbeEquality::Exact,
            kind: ValueKind::Ints,
        },
        LabelSpec {
            name: "fp_add",
            def: labels::fp_add(),
            equality: ProbeEquality::FpTolerance { rel: 1e-12 },
            kind: ValueKind::Floats,
        },
        LabelSpec {
            name: "min",
            def: labels::min(),
            equality: ProbeEquality::Exact,
            kind: ValueKind::Ints,
        },
        LabelSpec {
            name: "max",
            def: labels::max(),
            equality: ProbeEquality::Exact,
            kind: ValueKind::Ints,
        },
        LabelSpec {
            name: "oput",
            def: labels::oput(),
            equality: ProbeEquality::Exact,
            kind: ValueKind::OputPairs,
        },
        LabelSpec {
            name: "list",
            def: labels::list(),
            equality: ProbeEquality::Exact,
            kind: ValueKind::List,
        },
    ]
}

/// Random-value source for one check: a seeded rng plus a bump allocator
/// for list nodes and a key-dedup set for oput.
struct Gen {
    rng: TestRng,
    next_node: u64,
    used_keys: HashSet<u64>,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: TestRng(StdRng::seed_from_u64(seed)),
            next_node: 0x1000,
            used_keys: HashSet::new(),
        }
    }

    fn value(&mut self, kind: ValueKind, heap: &mut MapHeap) -> LineData {
        let rng = &mut self.rng.0;
        match kind {
            ValueKind::Ints => {
                let mut l = LineData::zeroed();
                for i in 0..WORDS_PER_LINE {
                    l[i] = match rng.random_range(0..4u32) {
                        0 => 0,
                        1 => rng.random_range(0..1_000u64),
                        _ => rng.next_u64(),
                    };
                }
                l
            }
            ValueKind::Floats => {
                let mut l = LineData::zeroed();
                for i in 0..WORDS_PER_LINE {
                    // Finite, exact-at-generation values (power-of-two
                    // denominator), positive and negative.
                    let v = (rng.random_range(0..2_000_001u64) as i64 - 1_000_000) as f64 / 16.0;
                    l[i] = v.to_bits();
                }
                l
            }
            ValueKind::OputPairs => {
                let mut l = LineData::zeroed();
                for p in 0..WORDS_PER_LINE / 2 {
                    if rng.random_range(0..4u32) == 0 {
                        l[2 * p] = u64::MAX; // identity pair
                    } else {
                        let k = loop {
                            let k = rng.random_range(0..1_000_000u64);
                            if self.used_keys.insert(k) {
                                break k;
                            }
                        };
                        l[2 * p] = k;
                        l[2 * p + 1] = rng.next_u64();
                    }
                }
                l
            }
            ValueKind::List => {
                let len = rng.random_range(0..5u64);
                let mut l = LineData::zeroed();
                let mut prev = 0u64;
                for _ in 0..len {
                    let node = self.next_node;
                    self.next_node += 0x40;
                    heap.set(node, 0);
                    if prev == 0 {
                        l[0] = node;
                    } else {
                        heap.set(prev, node);
                    }
                    prev = node;
                }
                l[1] = prev;
                l
            }
        }
    }
}

/// Canonical form of a value: directly comparable across evaluation
/// orders.
fn materialize(kind: ValueKind, heap: &MapHeap, line: &LineData) -> Vec<u64> {
    match kind {
        ValueKind::Ints | ValueKind::Floats => line.words().to_vec(),
        ValueKind::OputPairs => {
            let mut out = Vec::with_capacity(WORDS_PER_LINE);
            for p in 0..WORDS_PER_LINE / 2 {
                if line[2 * p] == u64::MAX {
                    // Identity pair: the value word is meaningless.
                    out.extend([u64::MAX, 0]);
                } else {
                    out.extend([line[2 * p], line[2 * p + 1]]);
                }
            }
            out
        }
        ValueKind::List => {
            let mut nodes = Vec::new();
            let mut cur = line[0];
            let mut last = 0u64;
            let mut steps = 0;
            while cur != 0 {
                steps += 1;
                if steps > 64 {
                    return vec![u64::MAX, 1]; // cycle / runaway: malformed
                }
                nodes.push(cur);
                last = cur;
                cur = heap.get(cur);
            }
            if line[1] != last {
                return vec![u64::MAX, 2]; // tail does not point at the end
            }
            nodes.sort_unstable();
            let mut out = vec![nodes.len() as u64];
            out.extend(nodes);
            out
        }
    }
}

/// Per-word comparison scale for fp tolerance: the sum of input
/// magnitudes, floored at 1.0.
fn fp_scale(inputs: &[&LineData]) -> Vec<f64> {
    (0..WORDS_PER_LINE)
        .map(|i| {
            inputs
                .iter()
                .map(|l| f64::from_bits(l[i]).abs())
                .sum::<f64>()
                .max(1.0)
        })
        .collect()
}

fn agree(eq: ProbeEquality, a: &[u64], b: &[u64], scale: &[f64]) -> bool {
    match eq {
        ProbeEquality::Exact => a == b,
        ProbeEquality::FpTolerance { rel } => {
            a.len() == b.len()
                && a.iter().zip(b).enumerate().all(|(i, (&x, &y))| {
                    let (fx, fy) = (f64::from_bits(x), f64::from_bits(y));
                    if !fx.is_finite() || !fy.is_finite() {
                        return x == y;
                    }
                    (fx - fy).abs() <= rel * scale.get(i).copied().unwrap_or(1.0)
                })
        }
    }
}

fn fail(spec: &LabelSpec, law: &str, cases: u32, detail: String) -> CheckResult {
    CheckResult {
        tier: Tier::Algebraic,
        subject: spec.name.to_string(),
        check: law.to_string(),
        cases,
        status: Status::Failed,
        detail,
    }
}

fn pass(spec: &LabelSpec, law: &str, cases: u32) -> CheckResult {
    CheckResult {
        tier: Tier::Algebraic,
        subject: spec.name.to_string(),
        check: law.to_string(),
        cases,
        status: Status::Passed,
        detail: String::new(),
    }
}

fn law_seed(base: u64, label: &str, law: &str) -> u64 {
    // FNV-1a over label/law so every check draws an independent stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
    for b in label.bytes().chain([b'/']).chain(law.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn check_commutativity(spec: &LabelSpec, opts: &VerifyOptions) -> CheckResult {
    let mut g = Gen::new(law_seed(opts.seed, spec.name, "commutativity"));
    for case in 0..opts.cases {
        let mut heap = MapHeap::new();
        let x = g.value(spec.kind, &mut heap);
        let y = g.value(spec.kind, &mut heap);
        let (mut h1, mut h2) = (heap.clone(), heap.clone());
        let mut a = x;
        apply_reduce(&spec.def, &mut h1, &mut a, &y);
        let mut b = y;
        apply_reduce(&spec.def, &mut h2, &mut b, &x);
        let (ma, mb) = (
            materialize(spec.kind, &h1, &a),
            materialize(spec.kind, &h2, &b),
        );
        // Reduction commutativity is bit-exact for every label, FP ADD
        // included: IEEE-754 addition commutes exactly.
        if ma != mb {
            return fail(
                spec,
                "commutativity",
                opts.cases,
                format!(
                    "case {case}: x⊕y={ma:?} but y⊕x={mb:?} for x={:?} y={:?}",
                    x.words(),
                    y.words()
                ),
            );
        }
    }
    pass(spec, "commutativity", opts.cases)
}

fn check_associativity(spec: &LabelSpec, opts: &VerifyOptions) -> CheckResult {
    let mut g = Gen::new(law_seed(opts.seed, spec.name, "associativity"));
    for case in 0..opts.cases {
        let mut heap = MapHeap::new();
        let x = g.value(spec.kind, &mut heap);
        let y = g.value(spec.kind, &mut heap);
        let z = g.value(spec.kind, &mut heap);
        let scale = fp_scale(&[&x, &y, &z]);
        let mut h1 = heap.clone();
        let mut lhs = x;
        apply_reduce(&spec.def, &mut h1, &mut lhs, &y);
        apply_reduce(&spec.def, &mut h1, &mut lhs, &z);
        let mut h2 = heap.clone();
        let mut yz = y;
        apply_reduce(&spec.def, &mut h2, &mut yz, &z);
        let mut rhs = x;
        apply_reduce(&spec.def, &mut h2, &mut rhs, &yz);
        let (ml, mr) = (
            materialize(spec.kind, &h1, &lhs),
            materialize(spec.kind, &h2, &rhs),
        );
        if !agree(spec.equality, &ml, &mr, &scale) {
            return fail(
                spec,
                "associativity",
                opts.cases,
                format!("case {case}: (x⊕y)⊕z={ml:?} but x⊕(y⊕z)={mr:?}"),
            );
        }
    }
    pass(spec, "associativity", opts.cases)
}

fn check_identity(spec: &LabelSpec, opts: &VerifyOptions) -> CheckResult {
    let mut g = Gen::new(law_seed(opts.seed, spec.name, "identity"));
    for case in 0..opts.cases {
        let mut heap = MapHeap::new();
        let x = g.value(spec.kind, &mut heap);
        let id = spec.def.identity();
        let want = materialize(spec.kind, &heap, &x);
        let mut h1 = heap.clone();
        let mut right = x;
        apply_reduce(&spec.def, &mut h1, &mut right, &id);
        if materialize(spec.kind, &h1, &right) != want {
            return fail(
                spec,
                "identity",
                opts.cases,
                format!("case {case}: x⊕id ≠ x for x={:?}", x.words()),
            );
        }
        let mut h2 = heap.clone();
        let mut left = id;
        apply_reduce(&spec.def, &mut h2, &mut left, &x);
        if materialize(spec.kind, &h2, &left) != want {
            return fail(
                spec,
                "identity",
                opts.cases,
                format!("case {case}: id⊕x ≠ x for x={:?}", x.words()),
            );
        }
    }
    pass(spec, "identity", opts.cases)
}

fn check_split_conservation(spec: &LabelSpec, opts: &VerifyOptions) -> CheckResult {
    if spec.def.split().is_none() {
        return CheckResult {
            tier: Tier::Algebraic,
            subject: spec.name.to_string(),
            check: "split-conservation".to_string(),
            cases: 0,
            status: Status::Skipped,
            detail: "label has no splitter".to_string(),
        };
    }
    let mut g = Gen::new(law_seed(opts.seed, spec.name, "split-conservation"));
    for case in 0..opts.cases {
        let mut heap = MapHeap::new();
        let x = g.value(spec.kind, &mut heap);
        let n = g.rng.0.random_range(1..=8usize);
        let want = materialize(spec.kind, &heap, &x);
        let mut h = heap.clone();
        let mut local = x;
        let mut out = spec.def.identity();
        apply_split(&spec.def, &mut h, &mut local, &mut out, n);
        // Reassemble donated ⊎ remainder (donation first: the list
        // splitter donates the head).
        let mut merged = out;
        apply_reduce(&spec.def, &mut h, &mut merged, &local);
        if materialize(spec.kind, &h, &merged) != want {
            return fail(
                spec,
                "split-conservation",
                opts.cases,
                format!(
                    "case {case}: split(n={n}) lost value: local={:?} out={:?} from x={:?}",
                    local.words(),
                    merged.words(),
                    x.words()
                ),
            );
        }
    }
    pass(spec, "split-conservation", opts.cases)
}

/// Runs every algebraic law for every (optionally filtered) label.
pub fn verify_labels(filter: Option<&str>, opts: &VerifyOptions) -> Vec<CheckResult> {
    let mut out = Vec::new();
    for spec in label_specs() {
        if let Some(f) = filter {
            if spec.name != f {
                continue;
            }
        }
        out.push(check_commutativity(&spec, opts));
        out.push(check_associativity(&spec, opts));
        out.push(check_identity(&spec, opts));
        out.push(check_split_conservation(&spec, opts));
    }
    out
}
