//! Tier B: the interleaving oracle over workload commutativity claims.
//!
//! Every built-in workload declares [`Claim`]s — pairs of labeled
//! operations it believes commute. For each claim, the oracle draws
//! randomized inputs, builds two identical machines (same setup, same
//! cache-state scramble), runs the pair in both orders, and compares the
//! claim's logical-state probes. A disagreement is a commutativity
//! violation; the oracle then greedily shrinks the inputs toward each
//! spec's low end to report a minimal counterexample.

use commtm_workloads::{builtins, Claim, Inputs, OpOrder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::report::{CheckResult, Status, Tier};
use crate::VerifyOptions;

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one claim attempt: both interleavings from identical machines.
/// `Ok(())` means the probes agreed; `Err` carries the mismatch (or a
/// coherence-invariant violation, which also fails the claim).
fn attempt(claim: &Claim, inputs: &Inputs, scramble_seed: u64) -> Result<(), String> {
    let a = claim
        .run_order(inputs, OpOrder::AB, scramble_seed)
        .map_err(|e| format!("invariant violation (a-then-b): {e}"))?;
    let b = claim
        .run_order(inputs, OpOrder::BA, scramble_seed)
        .map_err(|e| format!("invariant violation (b-then-a): {e}"))?;
    if claim.probe_equality().probes_agree(&a, &b) {
        Ok(())
    } else {
        Err(format!("probe mismatch: a-then-b {a:?} vs b-then-a {b:?}"))
    }
}

/// Greedily shrinks a failing assignment toward each input's low end,
/// keeping only changes that preserve the failure. Returns the minimal
/// inputs and their mismatch description.
fn shrink(
    claim: &Claim,
    mut inputs: Inputs,
    scramble_seed: u64,
    mut err: String,
) -> (Inputs, String) {
    let specs = claim.input_specs();
    loop {
        let mut changed = false;
        for (i, spec) in specs.iter().enumerate() {
            let lo = spec.lo;
            let cur = inputs.value(i);
            if cur == lo {
                continue;
            }
            // Jump straight to the minimum first.
            let mut probe = inputs.clone();
            probe.set(i, lo);
            if let Err(e) = attempt(claim, &probe, scramble_seed) {
                inputs = probe;
                err = e;
                changed = true;
                continue;
            }
            // Bisect (lo, cur) for the smallest still-failing value.
            let (mut good, mut bad) = (lo, cur);
            while bad - good > 1 {
                let mid = good + (bad - good) / 2;
                let mut probe = inputs.clone();
                probe.set(i, mid);
                match attempt(claim, &probe, scramble_seed) {
                    Err(e) => {
                        bad = mid;
                        err = e;
                    }
                    Ok(()) => good = mid,
                }
            }
            if bad != cur {
                inputs.set(i, bad);
                changed = true;
            }
        }
        if !changed {
            return (inputs, err);
        }
    }
}

/// Verifies one claim over `opts.cases` randomized input draws.
pub fn check_claim(workload: &str, claim: &Claim, opts: &VerifyOptions) -> CheckResult {
    let mut rng = StdRng::seed_from_u64(opts.seed ^ fnv(claim.name()));
    for case in 0..opts.cases {
        let inputs = Inputs::new(
            claim
                .input_specs()
                .iter()
                .map(|s| (s.name, rng.random_range(s.lo..=s.hi)))
                .collect(),
        );
        let scramble_seed = opts
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(case));
        if let Err(err) = attempt(claim, &inputs, scramble_seed) {
            let (min, min_err) = shrink(claim, inputs, scramble_seed, err);
            return CheckResult {
                tier: Tier::Interleaving,
                subject: workload.to_string(),
                check: claim.name().to_string(),
                cases: opts.cases,
                status: Status::Failed,
                detail: format!("minimal counterexample [{}]: {min_err}", min.describe()),
            };
        }
    }
    CheckResult {
        tier: Tier::Interleaving,
        subject: workload.to_string(),
        check: claim.name().to_string(),
        cases: opts.cases,
        status: Status::Passed,
        detail: String::new(),
    }
}

/// Verifies every claim of every (optionally filtered) built-in workload.
/// A workload with no claims yields a `Skipped` row so missing coverage
/// stays visible.
pub fn verify_claims(filter: Option<&str>, opts: &VerifyOptions) -> Vec<CheckResult> {
    let mut out = Vec::new();
    for w in builtins() {
        if let Some(f) = filter {
            if w.name() != f {
                continue;
            }
        }
        let claims = w.commutativity_claims();
        if claims.is_empty() {
            out.push(CheckResult {
                tier: Tier::Interleaving,
                subject: w.name().to_string(),
                check: "(no claims)".to_string(),
                cases: 0,
                status: Status::Skipped,
                detail: "workload declares no commutativity claims".to_string(),
            });
            continue;
        }
        for claim in &claims {
            out.push(check_claim(w.name(), claim, opts));
        }
    }
    out
}
