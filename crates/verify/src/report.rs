//! Report types for the verification harness: one [`CheckResult`] per
//! law or claim, aggregated into a [`VerifyReport`].

use std::fmt::Write as _;

/// Which tier produced a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Tier A: algebraic label laws over randomized lines and heaps.
    Algebraic,
    /// Tier B: the interleaving oracle over workload claims.
    Interleaving,
}

impl Tier {
    /// The spelling used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Algebraic => "algebraic",
            Tier::Interleaving => "interleaving",
        }
    }
}

/// Outcome of one check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// Every case agreed.
    Passed,
    /// A counterexample survived; the detail describes it.
    Failed,
    /// Not applicable (e.g. split conservation on a label with no
    /// splitter); the detail gives the reason.
    Skipped,
}

/// One verified law or claim.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Which tier ran it.
    pub tier: Tier,
    /// The label (tier A) or workload (tier B) under test.
    pub subject: String,
    /// The law (`commutativity`, ...) or claim name.
    pub check: String,
    /// Randomized cases executed.
    pub cases: u32,
    /// Pass / fail / skip.
    pub status: Status,
    /// Counterexample or skip reason; empty on a pass.
    pub detail: String,
}

/// The harness's full output for one invocation.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// The base seed every generator derived from.
    pub seed: u64,
    /// Cases per check.
    pub cases: u32,
    /// Every check that ran (or was skipped).
    pub results: Vec<CheckResult>,
}

impl VerifyReport {
    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status == Status::Failed)
            .count()
    }

    /// Whether every check passed or was skipped.
    pub fn ok(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the aligned text table `commtm-lab verify` prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "commutativity verification (seed {:#x})", self.seed);
        let subject_w = self
            .results
            .iter()
            .map(|r| r.subject.len())
            .max()
            .unwrap_or(0)
            .max("subject".len());
        let check_w = self
            .results
            .iter()
            .map(|r| r.check.len())
            .max()
            .unwrap_or(0)
            .max("check".len());
        let _ = writeln!(
            out,
            "  {:<12} {:<subject_w$} {:<check_w$} {:>5}  result",
            "tier", "subject", "check", "cases"
        );
        for r in &self.results {
            let verdict = match r.status {
                Status::Passed => "ok".to_string(),
                Status::Failed => format!("FAIL  {}", r.detail),
                Status::Skipped => format!("skip  {}", r.detail),
            };
            let _ = writeln!(
                out,
                "  {:<12} {:<subject_w$} {:<check_w$} {:>5}  {}",
                r.tier.name(),
                r.subject,
                r.check,
                r.cases,
                verdict
            );
        }
        let _ = writeln!(
            out,
            "{} checks, {} failed",
            self.results.len(),
            self.failures()
        );
        out
    }
}
