//! Commutativity verification harness for the CommTM reproduction.
//!
//! The paper's whole correctness argument (Sec. III) assumes the labeled
//! operations workloads issue actually commute. This crate checks that
//! assumption from two directions:
//!
//! - **Tier A ([`algebra`])** — the algebraic laws every label's reduction
//!   function and splitter must satisfy (commutativity, associativity,
//!   identity, split conservation), property-checked over randomized
//!   lines and heaps for all six built-in labels, with FP ADD exercising
//!   the "semantically but not bit-exactly associative" carve-out.
//! - **Tier B ([`oracle`])** — the interleaving oracle: each workload's
//!   declared [`commtm_workloads::Claim`]s run in both orders from
//!   identical randomized machine states on a real `MemSystem`, and a
//!   logical-state probe (the differencing abstraction of Koskinen &
//!   Bansal) must agree, shrinking to a minimal counterexample otherwise.
//!
//! The `commtm-lab verify` subcommand drives [`run_all`]; CI runs it with
//! a pinned seed, plus a mutation check (`--features mutate-estate-bug`)
//! proving the oracle catches a real, previously-fixed protocol bug.

pub mod algebra;
pub mod oracle;
pub mod report;

pub use algebra::{label_specs, verify_labels, LabelSpec};
pub use oracle::{check_claim, verify_claims};
pub use report::{CheckResult, Status, Tier, VerifyReport};

/// Knobs for one harness invocation.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Randomized cases per check.
    pub cases: u32,
    /// Base seed every per-check generator derives from.
    pub seed: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            cases: 32,
            seed: 0x5EED_C077,
        }
    }
}

/// Runs both tiers, honoring the optional label / workload filters: a
/// label filter alone runs only tier A, a workload filter alone only
/// tier B, neither runs everything.
pub fn run_all(
    label_filter: Option<&str>,
    workload_filter: Option<&str>,
    opts: &VerifyOptions,
) -> VerifyReport {
    let mut results = Vec::new();
    if workload_filter.is_none() || label_filter.is_some() {
        results.extend(verify_labels(label_filter, opts));
    }
    if label_filter.is_none() || workload_filter.is_some() {
        results.extend(verify_claims(workload_filter, opts));
    }
    VerifyReport {
        seed: opts.seed,
        cases: opts.cases,
        results,
    }
}
