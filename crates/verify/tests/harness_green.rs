//! The harness itself must be green on the unmutated protocol: every
//! label law passes and every workload stakes at least one passing claim.

use commtm_verify::{run_all, Status, Tier, VerifyOptions};
use proptest::prelude::*;

#[test]
fn full_harness_passes() {
    let opts = VerifyOptions {
        cases: 16,
        ..VerifyOptions::default()
    };
    let report = run_all(None, None, &opts);
    assert!(
        report.ok(),
        "harness must be green on the real protocol:\n{}",
        report.render_text()
    );
    // All six labels ran all four laws (split-conservation may skip).
    let algebraic = report
        .results
        .iter()
        .filter(|r| r.tier == Tier::Algebraic)
        .count();
    assert_eq!(algebraic, 6 * 4, "six labels x four laws");
    // Every built-in workload declared at least one claim, and every
    // claim passed — no "(no claims)" skip rows in tier B.
    let unclaimed: Vec<&str> = report
        .results
        .iter()
        .filter(|r| r.tier == Tier::Interleaving && r.status == Status::Skipped)
        .map(|r| r.subject.as_str())
        .collect();
    assert!(
        unclaimed.is_empty(),
        "workloads without commutativity claims: {unclaimed:?}"
    );
    let claims = report
        .results
        .iter()
        .filter(|r| r.tier == Tier::Interleaving)
        .count();
    assert!(
        claims >= commtm_workloads::builtins().len(),
        "at least one claim per workload"
    );
}

#[test]
fn filters_select_single_subjects() {
    let opts = VerifyOptions {
        cases: 8,
        ..VerifyOptions::default()
    };
    let labels_only = run_all(Some("min"), None, &opts);
    assert!(labels_only.ok(), "{}", labels_only.render_text());
    assert!(labels_only
        .results
        .iter()
        .all(|r| r.tier == Tier::Algebraic && r.subject == "min"));
    assert_eq!(labels_only.results.len(), 4);

    let one_workload = run_all(None, Some("counter"), &opts);
    assert!(one_workload.ok(), "{}", one_workload.render_text());
    assert!(one_workload
        .results
        .iter()
        .all(|r| r.tier == Tier::Interleaving && r.subject == "counter"));
    assert!(!one_workload.results.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The laws hold for arbitrary seeds, not just the pinned default —
    /// a seed that failed here would be a genuine counterexample, not
    /// harness flakiness.
    #[test]
    fn algebraic_tier_green_across_seeds(seed in 0u64..u64::MAX) {
        let opts = VerifyOptions { cases: 8, seed };
        let report = run_all(Some("add"), None, &opts);
        prop_assert!(report.ok(), "{}", report.render_text());
        let report = run_all(Some("list"), None, &opts);
        prop_assert!(report.ok(), "{}", report.render_text());
    }
}
