//! FP ADD regression (paper Sec. III-A): floating-point addition is
//! *bit-exactly commutative* but only *semantically associative* — the
//! carve-out that lets CommTM label FP accumulations where a scheme
//! demanding bit-exact results could not. These tests pin both halves of
//! that statement against the real `labels::fp_add()` reduction handler.

use commtm::{labels, LineData};
use commtm_protocol::testing::{apply_reduce, MapHeap};
use commtm_verify::{run_all, VerifyOptions};
use commtm_workloads::ProbeEquality;

fn fp_line(v: f64) -> LineData {
    LineData::splat(v.to_bits())
}

fn reduce(dst: LineData, src: LineData) -> LineData {
    let def = labels::fp_add();
    let mut heap = MapHeap::new();
    let mut d = dst;
    apply_reduce(&def, &mut heap, &mut d, &src);
    d
}

#[test]
fn fp_add_commutes_bit_exactly() {
    // IEEE-754 addition commutes exactly, so the reduction must too —
    // including on values whose sums round.
    for (a, b) in [
        (0.1, 0.2),
        (1e16, 1.0),
        (-0.3, 0.3),
        (3.5e-10, 7.25),
        (f64::MAX / 2.0, f64::MAX / 4.0),
    ] {
        assert_eq!(
            reduce(fp_line(a), fp_line(b)).words(),
            reduce(fp_line(b), fp_line(a)).words(),
            "fp_add({a}, {b}) must be bit-identical to fp_add({b}, {a})"
        );
    }
}

#[test]
fn fp_add_is_not_bit_exactly_associative() {
    // The textbook counterexample: (0.1 + 0.2) + 0.3 rounds differently
    // from 0.1 + (0.2 + 0.3). The raw f64 arithmetic diverges...
    let lhs = (0.1f64 + 0.2) + 0.3;
    let rhs = 0.1f64 + (0.2 + 0.3);
    assert_ne!(lhs.to_bits(), rhs.to_bits(), "f64 addition associates?");

    // ...and the reduction handler faithfully reproduces that divergence:
    // different reduction orders yield different bit patterns.
    let grouped_left = reduce(reduce(fp_line(0.1), fp_line(0.2)), fp_line(0.3));
    let grouped_right = reduce(fp_line(0.1), reduce(fp_line(0.2), fp_line(0.3)));
    assert_ne!(
        grouped_left.words(),
        grouped_right.words(),
        "reduction order must reproduce IEEE rounding divergence"
    );

    // But the two orders agree semantically: within relative tolerance.
    let eq = ProbeEquality::FpTolerance { rel: 1e-12 };
    assert!(
        eq.probes_agree(grouped_left.words(), grouped_right.words()),
        "orders must agree within tolerance"
    );
}

#[test]
fn harness_grants_fp_add_the_tolerance_carve_out() {
    // The algebraic tier must compare fp_add associativity with
    // tolerance (and everything else exactly) — pin that configuration.
    let spec = commtm_verify::label_specs()
        .into_iter()
        .find(|s| s.name() == "fp_add")
        .expect("fp_add spec");
    assert!(
        matches!(spec.equality(), ProbeEquality::FpTolerance { .. }),
        "fp_add must use the tolerance carve-out"
    );

    // And with that carve-out, all four laws pass.
    let report = run_all(Some("fp_add"), None, &VerifyOptions::default());
    assert!(report.ok(), "{}", report.render_text());
}
