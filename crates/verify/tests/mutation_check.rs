//! Mutation check: the interleaving oracle must catch a real protocol
//! bug. The `mutate-estate-bug` feature reintroduces the PR-4 defect
//! where a labeled store left an Exclusive line's LLC copy stale (the
//! E→M upgrade only fired for plain stores, so a clean-E downgrade could
//! discard the labeled update). With the mutation compiled in, the bank
//! workload's credit/audit claim must FAIL; without it, the same claim
//! must pass.
//!
//! CI runs this test twice: once in the default build (green path) and
//! once with `--features mutate-estate-bug` (the oracle must go red).

use commtm_verify::{run_all, VerifyOptions};

#[cfg(feature = "mutate-estate-bug")]
#[test]
fn oracle_catches_the_estate_bug() {
    let report = run_all(None, Some("bank"), &VerifyOptions::default());
    assert!(
        report.failures() > 0,
        "the mutated protocol must fail the bank claims:\n{}",
        report.render_text()
    );
    assert!(
        report
            .results
            .iter()
            .any(|r| r.status == commtm_verify::Status::Failed && r.check.contains("credit")),
        "the credit/audit claim specifically must catch the E-state bug:\n{}",
        report.render_text()
    );
}

#[cfg(not(feature = "mutate-estate-bug"))]
#[test]
fn bank_claims_pass_without_the_mutation() {
    let report = run_all(None, Some("bank"), &VerifyOptions::default());
    assert!(
        report.ok(),
        "unmutated protocol must pass the bank claims:\n{}",
        report.render_text()
    );
}
