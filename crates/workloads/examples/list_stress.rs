//! Exhaustive randomized conservation check for the list microbenchmark.
use commtm::Scheme;
use commtm_workloads::micro::list::{run, Cfg, Mix};
use commtm_workloads::BaseCfg;

fn main() {
    let mut checked = 0;
    for ops in [10, 20, 40, 80, 150] {
        for threads in [1, 2, 3, 4, 8] {
            for seed in 0..10 {
                for mix in [Mix::EnqueueOnly, Mix::Mixed] {
                    for scheme in [Scheme::Baseline, Scheme::CommTm] {
                        let cfg = Cfg::new(BaseCfg::new(threads, scheme).with_seed(seed), ops, mix);
                        run(&cfg);
                        checked += 1;
                    }
                }
            }
        }
    }
    println!("all {checked} configurations conserve list contents");
}
