//! Simulated-memory data structures and program fragments shared by
//! workloads: word-access abstraction, bounded min-heaps (top-K sets),
//! sense-free barriers, and the top-K label definition.

use commtm::{Addr, Ctl, LabelDef, LineData, ProgramBuilder, ReduceOps, TxCtx};

/// Uniform word access over simulated memory, so the same data-structure
/// code runs inside transactions ([`TxWords`]) and inside reduction
/// handlers ([`RedWords`]).
pub trait Words {
    /// Reads the word at `addr`.
    fn get(&mut self, addr: Addr) -> u64;
    /// Writes the word at `addr`.
    fn put(&mut self, addr: Addr, value: u64);
}

/// [`Words`] over a transaction context (conventional loads/stores).
pub struct TxWords<'a, 'b, 'c>(pub &'a mut TxCtx<'b, 'c>);

impl Words for TxWords<'_, '_, '_> {
    fn get(&mut self, addr: Addr) -> u64 {
        self.0.load(addr)
    }
    fn put(&mut self, addr: Addr, value: u64) {
        self.0.store(addr, value);
    }
}

/// [`Words`] over a commutativity-claim transaction, so data-structure
/// code (e.g. [`simheap`]) runs unchanged inside claim ops.
impl Words for crate::claims::TxOps<'_> {
    fn get(&mut self, addr: Addr) -> u64 {
        self.load(addr)
    }
    fn put(&mut self, addr: Addr, value: u64) {
        self.store(addr, value);
    }
}

/// [`Words`] over a reduction-handler context.
pub struct RedWords<'a>(pub &'a mut dyn ReduceOps);

impl Words for RedWords<'_> {
    fn get(&mut self, addr: Addr) -> u64 {
        self.0.read(addr)
    }
    fn put(&mut self, addr: Addr, value: u64) {
        self.0.write(addr, value);
    }
}

/// A bounded min-heap in simulated memory, used as a top-K set: it retains
/// the K largest values inserted. Layout: word 0 = length, word 1 =
/// capacity, words 2.. = elements (min-heap order, so the smallest retained
/// value is at the root and eviction is O(log K)).
pub mod simheap {
    use super::Words;
    use commtm::Addr;

    fn elem(heap: Addr, i: u64) -> Addr {
        heap.offset_words(2 + i)
    }

    /// Initializes an empty heap of the given capacity (host-side setup
    /// uses this through a `Words` adapter too).
    pub fn init(w: &mut impl Words, heap: Addr, capacity: u64) {
        w.put(heap, 0);
        w.put(heap.offset_words(1), capacity);
    }

    /// Number of retained elements.
    pub fn len(w: &mut impl Words, heap: Addr) -> u64 {
        w.get(heap)
    }

    /// Inserts `x`, evicting the smallest retained value if full and `x`
    /// exceeds it. Returns whether the heap changed.
    pub fn insert(w: &mut impl Words, heap: Addr, x: u64) -> bool {
        let len = w.get(heap);
        let cap = w.get(heap.offset_words(1));
        if len < cap {
            w.put(elem(heap, len), x);
            w.put(heap, len + 1);
            sift_up(w, heap, len);
            true
        } else {
            if cap == 0 || x <= w.get(elem(heap, 0)) {
                return false;
            }
            w.put(elem(heap, 0), x);
            sift_down(w, heap, 0, cap);
            true
        }
    }

    /// Reads out all retained elements (unordered).
    pub fn drain_values(w: &mut impl Words, heap: Addr) -> Vec<u64> {
        let len = w.get(heap);
        (0..len).map(|i| w.get(elem(heap, i))).collect()
    }

    fn sift_up(w: &mut impl Words, heap: Addr, mut i: u64) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (a, b) = (w.get(elem(heap, i)), w.get(elem(heap, parent)));
            if a < b {
                w.put(elem(heap, i), b);
                w.put(elem(heap, parent), a);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(w: &mut impl Words, heap: Addr, mut i: u64, len: u64) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            let mut sv = w.get(elem(heap, i));
            if l < len {
                let lv = w.get(elem(heap, l));
                if lv < sv {
                    smallest = l;
                    sv = lv;
                }
            }
            if r < len {
                let rv = w.get(elem(heap, r));
                if rv < sv {
                    smallest = r;
                }
            }
            if smallest == i {
                break;
            }
            let a = w.get(elem(heap, i));
            let b = w.get(elem(heap, smallest));
            w.put(elem(heap, i), b);
            w.put(elem(heap, smallest), a);
            i = smallest;
        }
    }
}

/// The top-K set label (paper Fig. 15): the descriptor line's word 0 points
/// to a [`simheap`]; each U-state copy points to a thread-local heap, and
/// reduction merges the source heap into the destination one, draining it.
pub fn topk_label() -> LabelDef {
    LabelDef::new("TOPK", LineData::zeroed(), |ops, dst, src| {
        if src[0] == 0 {
            return;
        }
        if dst[0] == 0 {
            dst[0] = src[0];
            return;
        }
        let mut w = RedWords(ops);
        let (to, from) = (Addr::new(dst[0]), Addr::new(src[0]));
        let values = simheap::drain_values(&mut w, from);
        for v in values {
            simheap::insert(&mut w, to, v);
        }
        w.put(from, 0); // source heap emptied
    })
}

/// Emits a sense-free barrier into a program: one transactional arrival
/// increment, then a non-transactional spin until all `threads` of the
/// current phase have arrived. Each crossing bumps the phase register, so a
/// single monotonically-increasing counter serves every barrier in the
/// program.
///
/// `phase_reg` must be a register reserved for barrier accounting.
pub fn emit_barrier(p: &mut ProgramBuilder, counter: Addr, threads: u64, phase_reg: usize) {
    // Arrive.
    p.tx(move |t| {
        let v = t.load(counter);
        t.store(counter, v + 1);
    });
    p.ctl(move |c| {
        c.regs[phase_reg] += 1;
        Ctl::Next
    });
    // Spin until everyone in this phase arrived.
    let spin = p.here();
    p.plain(move |t| {
        let v = t.load(counter);
        let target = t.reg(phase_reg) * threads;
        // Record the decision for the following Ctl block.
        t.set_reg(phase_reg + 1, u64::from(v >= target));
        if v < target {
            t.work(32); // polling interval
        }
    });
    p.ctl(move |c| {
        if c.regs[phase_reg + 1] == 1 {
            Ctl::Next
        } else {
            Ctl::Jump(spin)
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapWords(HashMap<u64, u64>);
    impl Words for MapWords {
        fn get(&mut self, a: Addr) -> u64 {
            *self.0.get(&a.raw()).unwrap_or(&0)
        }
        fn put(&mut self, a: Addr, v: u64) {
            self.0.insert(a.raw(), v);
        }
    }

    #[test]
    fn simheap_retains_top_k() {
        let mut w = MapWords(HashMap::new());
        let h = Addr::new(0x1000);
        simheap::init(&mut w, h, 4);
        for v in [5u64, 1, 9, 7, 3, 8, 2, 6] {
            simheap::insert(&mut w, h, v);
        }
        let mut got = simheap::drain_values(&mut w, h);
        got.sort_unstable();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn simheap_handles_duplicates_and_underflow() {
        let mut w = MapWords(HashMap::new());
        let h = Addr::new(0x1000);
        simheap::init(&mut w, h, 3);
        for v in [4u64, 4, 4, 4, 4] {
            simheap::insert(&mut w, h, v);
        }
        assert_eq!(simheap::len(&mut w, h), 3);
        assert!(
            !simheap::insert(&mut w, h, 1),
            "too-small values are rejected when full"
        );
    }

    #[test]
    fn topk_label_merges_heaps() {
        let def = topk_label();
        let mut w = MapWords(HashMap::new());
        let (h1, h2) = (Addr::new(0x100), Addr::new(0x800));
        simheap::init(&mut w, h1, 3);
        simheap::init(&mut w, h2, 3);
        for v in [10u64, 30, 50] {
            simheap::insert(&mut w, h1, v);
        }
        for v in [20u64, 40, 60] {
            simheap::insert(&mut w, h2, v);
        }
        struct Ops<'a>(&'a mut MapWords);
        impl ReduceOps for Ops<'_> {
            fn read(&mut self, a: Addr) -> u64 {
                self.0.get(a)
            }
            fn write(&mut self, a: Addr, v: u64) {
                self.0.put(a, v);
            }
        }
        let mut dst = LineData::zeroed();
        dst[0] = h1.raw();
        let mut src = LineData::zeroed();
        src[0] = h2.raw();
        (def.reduce())(&mut Ops(&mut w), &mut dst, &src);
        let mut got = simheap::drain_values(&mut w, h1);
        got.sort_unstable();
        assert_eq!(got, vec![40, 50, 60]);
        assert_eq!(simheap::len(&mut w, h2), 0, "source heap drained");
        // Merging an empty source is a no-op.
        let before = w.0.clone();
        (def.reduce())(&mut Ops(&mut w), &mut dst, &LineData::zeroed());
        assert_eq!(w.0, before);
    }
}
