//! ssca2 (paper Sec. VII, Table II): a graph-construction kernel that
//! spends most of its time in parallel per-node work and only a small
//! fraction in commutative updates to shared global graph metadata (32b ADD
//! in the paper). The paper measures a negligible CommTM gain (+0.2% at 128
//! threads) precisely because contention is rare — this workload exists to
//! show CommTM does no harm when commutativity is scarce.
//!
//! Structure: threads scan a partition of a synthetic scale-free edge list,
//! transactionally bumping per-node degree counters (rarely contended), and
//! every `batch` edges commit one transaction updating the global edge
//! counter with an ADD-labeled operation.

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for ssca2 (the paper runs -s16, i.e. 2^16 nodes; scaled
/// defaults).
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Edges per global-metadata batch update.
    pub batch: usize,
    /// Non-memory work cycles per edge (hashing, generation).
    pub work_per_edge: u64,
}

impl Cfg {
    /// A scaled-down default shaped like the paper's input.
    pub fn new(base: BaseCfg) -> Self {
        Cfg {
            base,
            nodes: 1024,
            edges: 2048,
            batch: 16,
            work_per_edge: 24,
        }
    }
}

const R_E: usize = 0; // edge index
const R_BATCH: usize = 1; // edges since last metadata update

/// Runs ssca2; verifies degree sums and the global edge counter.
///
/// # Panics
///
/// Panics if the per-node degrees don't sum to the edge count, or the
/// global metadata counter disagrees.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    deg: Addr,
    total_edges: Addr,
    host_deg: Vec<u64>,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    let (nodes, edges) = (cfg.nodes, cfg.edges);
    let deg = m.heap_mut().alloc(nodes as u64 * 8, 64);
    let edge_src = m.heap_mut().alloc(edges as u64 * 8, 64);
    let total_edges = m.heap_mut().alloc_lines(1);

    // Synthetic scale-free-ish edge endpoints (preferential towards low
    // node ids, like RMAT output).
    let mut host_deg = vec![0u64; nodes];
    {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(cfg.base.seed ^ 0x5543_4132);
        for e in 0..edges {
            let r: f64 = rng.random_range(0.0..1.0);
            let u = ((r * r) * nodes as f64) as usize % nodes;
            host_deg[u] += 1;
            m.poke(edge_src.offset_words(e as u64), u as u64);
        }
    }

    let threads = cfg.base.threads;
    for t in 0..threads {
        let lo = edges * t / threads;
        let hi = edges * (t + 1) / threads;
        let batch = cfg.batch as u64;
        let work = cfg.work_per_edge;
        let mut p = Program::builder();
        p.ctl(move |c| {
            c.regs[R_E] = lo as u64;
            c.regs[R_BATCH] = 0;
            Ctl::Next
        });
        if hi > lo {
            let top = p.here();
            // Per-edge transaction: bump the endpoint's degree (plain RMW;
            // rarely contended across 1024 nodes).
            p.tx(move |c| {
                c.work(work);
                let e = c.reg(R_E);
                let u = c.load(edge_src.offset_words(e));
                let a = deg.offset_words(u % nodes as u64);
                let dv = c.load(a);
                c.store(a, dv + 1);
            });
            // Every `batch` edges, update global metadata (the commutative
            // op of Table II). Layout: [decide] [meta tx] [advance], so the
            // skip target is two blocks past the decision.
            let decide = p.here();
            let advance = decide + 2;
            p.ctl(move |c| {
                c.regs[R_BATCH] += 1;
                if c.regs[R_BATCH] >= batch || c.regs[R_E] + 1 >= hi as u64 {
                    Ctl::Next // fall through to the metadata tx
                } else {
                    Ctl::Jump(advance)
                }
            });
            p.tx(move |c| {
                let n = c.reg(R_BATCH);
                let v = c.load_l(add, total_edges);
                c.store_l(add, total_edges, v + n);
                c.set_reg(R_BATCH, 0);
            });
            debug_assert_eq!(p.here(), advance);
            p.ctl(move |c| {
                c.regs[R_E] += 1;
                if (c.regs[R_E] as usize) < hi {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), ());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            deg,
            total_edges,
            host_deg,
        }),
    }
}

/// The oracle: per-node degrees match the host-side tally and sum to the
/// edge count, which the global metadata counter must also equal.
///
/// # Panics
///
/// Panics on any mismatch.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let aux = out.aux.downcast_ref::<Aux>().expect("ssca2 aux");
    let (deg, total_edges) = (aux.deg, aux.total_edges);
    let host_deg = aux.host_deg.clone();
    let m = &mut out.machine;
    let edges = cfg.edges;
    let total = m.read_word(total_edges);
    assert_eq!(
        total, edges as u64,
        "global metadata counter must equal edge count"
    );
    let mut sum = 0u64;
    for (u, &hd) in host_deg.iter().enumerate() {
        let dv = m.read_word(deg.offset_words(u as u64));
        assert_eq!(dv, hd, "degree of node {u}");
        sum += dv;
    }
    assert_eq!(sum, edges as u64);
    m.check_invariants().expect("coherence invariants");
}

/// The registered ssca2 application (Table II).
pub struct Ssca2;

impl Ssca2 {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mut cfg = Cfg::new(base);
        cfg.nodes = p.u64("nodes") as usize;
        cfg.edges = p.u64("edges") as usize;
        cfg.batch = p.u64("batch") as usize;
        cfg.work_per_edge = p.u64("work_per_edge");
        cfg
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::App
    }

    fn summary(&self) -> &'static str {
        "graph kernel with rare global-metadata updates"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let degrees = Addr::new(0x1000); // eight per-vertex counters, one line
        let bump = move |core: usize, wkey: &'static str, dkey: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let a = degrees.offset_words(inp.get(wkey));
                let d = inp.get(dkey);
                ctx.txn(core, |t| {
                    let v = t.load_l(add, a);
                    t.store_l(add, a, v.wrapping_add(d));
                });
            }
        };
        vec![Claim::new(
            "ssca2/degree-updates-commute",
            "ADD-labeled per-vertex degree bumps commute even when both land \
             on the same word of the shared metadata line",
        )
        .label(labels::add())
        .input("wa", 0..=7)
        .input("wb", 0..=7)
        .input("da", 1..=1_000)
        .input("db", 1..=1_000)
        .op_a(bump(0, "wa", "da"))
        .op_b(bump(1, "wb", "db"))
        .probe(move |ctx: &mut ClaimCtx| {
            let mut p = vec![ctx.logical_w0(degrees)];
            p.extend((0..8).map(|w| ctx.read(0, degrees.offset_words(w))));
            p
        })]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64("nodes", 1024, "number of nodes")
            .u64_per_scale("edges", 2_048, "number of edges")
            .u64("batch", 16, "edges per global-metadata batch update")
            .u64("work_per_edge", 24, "non-memory work cycles per edge")
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn degrees_and_metadata_match_under_both_schemes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let mut cfg = Cfg::new(BaseCfg::new(4, scheme));
            cfg.nodes = 128;
            cfg.edges = 256;
            run(&cfg);
        }
    }

    #[test]
    fn single_thread() {
        let mut cfg = Cfg::new(BaseCfg::new(1, Scheme::CommTm));
        cfg.nodes = 64;
        cfg.edges = 100;
        run(&cfg);
    }
}
