//! boruvka (paper Sec. VII, Table II): minimum spanning tree by Borůvka
//! rounds, using all four of the paper's commutative operations:
//!
//! - **OPUT** records the minimum-weight edge leaving each component,
//! - **MIN** unions components (labels only ever decrease),
//! - **MAX** marks edges added to the MST,
//! - **ADD** accumulates the MST weight and per-round change counters.
//!
//! Each round has three barrier-separated phases: (A) scan edges, ordered-
//! putting each cross-component edge into both endpoint components' min-
//! edge slots; (B) process owned components, adding their selected edge (a
//! component pair's selections coincide by the distinct-weight argument, so
//! the lower-label owner adds it) and unioning via MIN; (C) reset min-edge
//! slots and check the change counter for termination.
//!
//! The input graph substitutes the paper's `usroads` (SuiteSparse) with a
//! synthetic road-network-like graph: a 2-D grid with random diagonals and
//! distinct random weights (DESIGN.md §5).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::ds::emit_barrier;
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, ParamValue, Params};

/// Configuration for boruvka.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Grid side (nodes = side * side).
    pub side: usize,
    /// Probability (percent) of adding a diagonal shortcut per cell.
    pub diagonal_pct: u64,
}

impl Cfg {
    /// A scaled-down road-like default.
    pub fn new(base: BaseCfg) -> Self {
        Cfg {
            base,
            side: 12,
            diagonal_pct: 30,
        }
    }
}

/// A host-side graph: `edges[e] = (u, v, w)` with distinct weights.
pub struct Graph {
    /// Number of nodes.
    pub nodes: usize,
    /// Edge list with distinct weights.
    pub edges: Vec<(u64, u64, u64)>,
}

/// Generates the grid-plus-diagonals road-like graph.
pub fn road_graph(side: usize, diagonal_pct: u64, seed: u64) -> Graph {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x726f_6164);
    let nodes = side * side;
    let id = |x: usize, y: usize| (y * side + x) as u64;
    let mut edges = Vec::new();
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < side {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if x + 1 < side && y + 1 < side && rng.random_range(0..100) < diagonal_pct {
                edges.push((id(x, y), id(x + 1, y + 1)));
            }
        }
    }
    // Distinct weights: a random permutation of 1..=E scaled.
    let mut weights: Vec<u64> = (1..=edges.len() as u64).map(|w| w * 7).collect();
    for i in (1..weights.len()).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        weights.swap(i, j);
    }
    let edges = edges
        .into_iter()
        .zip(weights)
        .map(|((u, v), w)| (u, v, w))
        .collect();
    Graph { nodes, edges }
}

/// The set of edge indices in the (unique) MST, by Kruskal.
pub fn kruskal_set(g: &Graph) -> std::collections::HashSet<usize> {
    let mut parent: Vec<usize> = (0..g.nodes).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut idx: Vec<usize> = (0..g.edges.len()).collect();
    idx.sort_by_key(|&e| g.edges[e].2);
    let mut set = std::collections::HashSet::new();
    for e in idx {
        let (u, v, _) = g.edges[e];
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
            set.insert(e);
        }
    }
    set
}

/// Like [`run`] but returns the marked edge set without asserting (debug
/// aid).
pub fn run_collect(cfg: &Cfg) -> std::collections::HashSet<usize> {
    let mut out = execute(cfg);
    marked_edges(&mut out)
}

/// Kruskal's algorithm on the host graph (the oracle).
pub fn kruskal_weight(g: &Graph) -> u64 {
    let mut parent: Vec<usize> = (0..g.nodes).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut edges = g.edges.clone();
    edges.sort_by_key(|&(_, _, w)| w);
    let mut total = 0;
    for (u, v, w) in edges {
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
            total += w;
        }
    }
    total
}

const R_PHASE: usize = 0; // + R_PHASE+1 barrier scratch
const R_E: usize = 2;
const R_ROUND: usize = 3;
const R_C: usize = 4;
const R_DONE: usize = 5;

const MAX_ROUNDS: u64 = 64;

/// Chases component labels to a fixed point (plain loads inside the
/// enclosing block; bounded, and tolerant of satiated-zero reads).
fn find_label(c: &mut TxCtx<'_, '_>, labels_base: Addr, mut x: u64, nodes: u64) -> u64 {
    // Labels strictly decrease along chains, so `nodes` hops always reach
    // the root; satiated-zero reads terminate at node 0.
    for _ in 0..nodes {
        if x >= nodes {
            return x;
        }
        let l = c.load(labels_base.offset_words(x));
        if l == x {
            return x;
        }
        x = l;
    }
    x
}

/// Runs boruvka; verifies the MST weight against Kruskal and the edge
/// count against `nodes - 1`.
///
/// # Panics
///
/// Panics if the computed spanning tree differs from the oracle.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    weight: Addr,
    marks: Addr,
    nodes: u64,
    nedges: u64,
    /// Kruskal's MST weight over the generated input graph.
    oracle_weight: u64,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let g = road_graph(cfg.side, cfg.diagonal_pct, cfg.base.seed);
    let oracle = kruskal_weight(&g);
    let (nodes, nedges) = (g.nodes as u64, g.edges.len() as u64);

    let mut b = cfg.base.builder();
    let oput = b.register_label(labels::oput()).expect("label budget");
    let min = b.register_label(labels::min()).expect("label budget");
    let max = b.register_label(labels::max()).expect("label budget");
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    // Layout.
    let labels_arr = m.heap_mut().alloc(nodes * 8, 64);
    let edge_u = m.heap_mut().alloc(nedges * 8, 64);
    let edge_v = m.heap_mut().alloc(nedges * 8, 64);
    let edge_w = m.heap_mut().alloc(nedges * 8, 64);
    // One OPUT (key, value) pair per component, line-aligned to keep the
    // baseline free of false sharing (the pair fits one line).
    let minedge: Vec<Addr> = (0..nodes).map(|_| m.heap_mut().alloc_lines(1)).collect();
    // One mark per line: this transaction mixes plain reads (which fold
    // the line into a full M copy) with MAX-labeled updates; padding keeps
    // every line single-writer-of-one-word so the mixed access pattern
    // cannot interleave stale full copies with partials.
    let marks = m.heap_mut().alloc(nedges * 64, 64);
    let weight = m.heap_mut().alloc_lines(1);
    let changed = m.heap_mut().alloc(MAX_ROUNDS * 8, 64);
    let barrier = m.heap_mut().alloc_lines(1);

    for x in 0..nodes {
        m.poke(labels_arr.offset_words(x), x);
    }
    for (e, &(u, v, w)) in g.edges.iter().enumerate() {
        m.poke(edge_u.offset_words(e as u64), u);
        m.poke(edge_v.offset_words(e as u64), v);
        m.poke(edge_w.offset_words(e as u64), w);
    }
    for me in &minedge {
        m.poke(*me, u64::MAX); // OPUT identity key
    }

    let threads = cfg.base.threads;
    for t in 0..threads {
        let e_lo = (nedges as usize) * t / threads;
        let e_hi = (nedges as usize) * (t + 1) / threads;
        let minedge = minedge.clone();
        let mut p = Program::builder();

        let round_top = p.here();
        // ---- Phase A: ordered-put each cross edge into both components.
        p.ctl(move |c| {
            c.regs[R_E] = e_lo as u64;
            Ctl::Next
        });
        if e_hi > e_lo {
            let scan_top = p.here();
            let me_a = minedge.clone();
            p.tx(move |c| {
                let e = c.reg(R_E);
                let u = c.load(edge_u.offset_words(e));
                let v = c.load(edge_v.offset_words(e));
                let w = c.load(edge_w.offset_words(e));
                let lu = find_label(c, labels_arr, u, nodes);
                let lv = find_label(c, labels_arr, v, nodes);
                if lu != lv && lu < nodes && lv < nodes {
                    let key = w * (nedges + 1) + e; // distinct keys
                    for comp in [lu, lv] {
                        let slot = me_a[comp as usize];
                        let cur = c.load_l(oput, slot);
                        if key < cur {
                            c.store_l(oput, slot, key);
                            c.store_l(oput, slot.offset_words(1), e);
                        }
                    }
                }
                c.work(8);
            });
            p.ctl(move |c| {
                c.regs[R_E] += 1;
                if (c.regs[R_E] as usize) < e_hi {
                    Ctl::Jump(scan_top)
                } else {
                    Ctl::Next
                }
            });
        }
        emit_barrier(&mut p, barrier, threads as u64, R_PHASE);

        // ---- Phase B: add selected edges, union components.
        p.ctl(move |c| {
            c.regs[R_C] = t as u64;
            Ctl::Next
        });
        let comp_top = p.here();
        let me_b = minedge.clone();
        p.tx(move |c| {
            let comp = c.reg(R_C);
            if comp < nodes {
                let slot = me_b[comp as usize];
                let key = c.load(slot); // plain read: reduces the OPUT slot
                if key != u64::MAX && key != 0 {
                    let e = c.load(slot.offset_words(1));
                    let u = c.load(edge_u.offset_words(e));
                    let v = c.load(edge_v.offset_words(e));
                    let w = c.load(edge_w.offset_words(e));
                    let lu = find_label(c, labels_arr, u, nodes);
                    let lv = find_label(c, labels_arr, v, nodes);
                    if lu != lv && lu < nodes && lv < nodes {
                        let (lo, hi) = (lu.min(lv), lu.max(lv));
                        // Union: labels only ever decrease (MIN commutes).
                        c.store_l(min, labels_arr.offset_words(hi), lo);
                        // Both endpoint components may have selected this
                        // edge; a *plain* read of the mark serializes the
                        // two adders through ordinary conflict detection,
                        // so the weight is counted exactly once. The mark
                        // itself is a commutative MAX.
                        let mk = c.load(marks.offset_words(e * 8));
                        if mk == 0 {
                            c.store_l(max, marks.offset_words(e * 8), 1);
                            let tot = c.load_l(add, weight);
                            c.store_l(add, weight, tot + w);
                            let round = c.reg(R_ROUND);
                            let ch = c.load_l(add, changed.offset_words(round));
                            c.store_l(add, changed.offset_words(round), ch + 1);
                        }
                    }
                }
            }
            c.work(8);
        });
        p.ctl(move |c| {
            c.regs[R_C] += threads as u64;
            if c.regs[R_C] < nodes {
                Ctl::Jump(comp_top)
            } else {
                Ctl::Next
            }
        });
        emit_barrier(&mut p, barrier, threads as u64, R_PHASE);

        // ---- Phase C: reset owned min-edge slots; check for termination.
        let me_c = minedge.clone();
        p.plain(move |c| {
            let mut comp = t as u64;
            while comp < nodes {
                c.store(me_c[comp as usize], u64::MAX);
                c.store(me_c[comp as usize].offset_words(1), 0);
                comp += threads as u64;
            }
            let round = c.reg(R_ROUND);
            let ch = c.load(changed.offset_words(round));
            c.set_reg(R_DONE, u64::from(ch == 0));
        });
        emit_barrier(&mut p, barrier, threads as u64, R_PHASE);
        p.ctl(move |c| {
            c.regs[R_ROUND] += 1;
            if c.regs[R_DONE] == 1 || c.regs[R_ROUND] >= MAX_ROUNDS {
                Ctl::Done
            } else {
                Ctl::Jump(round_top)
            }
        });
        m.set_program(t, p.build(), ());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            weight,
            marks,
            nodes,
            nedges,
            oracle_weight: oracle,
        }),
    }
}

/// The edge indices marked as MST members by the finished run.
fn marked_edges(out: &mut RunOutcome) -> std::collections::HashSet<usize> {
    let &Aux { marks, nedges, .. } = out.aux.downcast_ref::<Aux>().expect("boruvka aux");
    let mut marked = std::collections::HashSet::new();
    for e in 0..nedges {
        if out.machine.read_word(marks.offset_words(e * 8)) != 0 {
            marked.insert(e as usize);
        }
    }
    marked
}

/// The oracle: MST weight equals Kruskal's and the marked edges form a
/// spanning tree (`nodes - 1` of them for a connected graph).
///
/// # Panics
///
/// Panics if the computed spanning tree differs from the oracle.
pub fn check(_cfg: &Cfg, out: &mut RunOutcome) {
    let &Aux {
        weight,
        nodes,
        oracle_weight,
        ..
    } = out.aux.downcast_ref::<Aux>().expect("boruvka aux");
    let got = out.machine.read_word(weight);
    let marked = marked_edges(out);
    assert_eq!(got, oracle_weight, "MST weight must match Kruskal");
    assert_eq!(
        marked.len() as u64,
        nodes - 1,
        "a connected graph's MST has n-1 edges"
    );
    out.machine
        .check_invariants()
        .expect("coherence invariants");
}

/// The registered boruvka application (Table II).
pub struct Boruvka;

impl Boruvka {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mut cfg = Cfg::new(base);
        cfg.side = p.u64("side") as usize;
        cfg.diagonal_pct = p.u64("diagonal_pct");
        cfg
    }
}

impl Workload for Boruvka {
    fn name(&self) -> &'static str {
        "boruvka"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::App
    }

    fn summary(&self) -> &'static str {
        "minimum spanning tree over a road-like graph"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let min_l = LabelId::new(0);
        let add = LabelId::new(0);
        let comp = Addr::new(0x1000);
        let weight = Addr::new(0x1000);
        let relabel = move |core: usize, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let lo = inp.get(key);
                ctx.txn(core, |t| t.store_l(min_l, comp, lo));
            }
        };
        let accumulate = move |core: usize, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let w = inp.get(key);
                ctx.txn(core, |t| {
                    let tot = t.load_l(add, weight);
                    t.store_l(add, weight, tot + w);
                });
            }
        };
        vec![
            Claim::new(
                "boruvka/component-relabels-commute",
                "two MIN-labeled component relabelings keep the lowest \
                 representative id in either order",
            )
            .label(labels::min())
            .input("xa", 0..=1_000_000)
            .input("xb", 0..=1_000_000)
            .setup(move |ctx: &mut ClaimCtx, _inp: &Inputs| ctx.poke(comp, u64::MAX))
            .op_a(relabel(0, "xa"))
            .op_b(relabel(1, "xb"))
            .probe(move |ctx: &mut ClaimCtx| vec![ctx.read(0, comp)]),
            Claim::new(
                "boruvka/mst-weight-accumulations-commute",
                "two ADD-labeled MST-weight accumulations sum identically in \
                 either order",
            )
            .label(labels::add())
            .input("wa", 1..=1_000_000)
            .input("wb", 1..=1_000_000)
            .op_a(accumulate(0, "wa"))
            .op_b(accumulate(1, "wb"))
            .probe(move |ctx: &mut ClaimCtx| vec![ctx.logical_w0(weight), ctx.read(0, weight)]),
        ]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_computed(
                "side",
                |scale, _| ParamValue::U64(10 + 2 * scale.min(20)),
                "grid side (nodes = side², grows with scale up to 50)",
            )
            .u64(
                "diagonal_pct",
                30,
                "percent chance of a diagonal shortcut per cell",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn kruskal_on_tiny_graph() {
        let g = Graph {
            nodes: 3,
            edges: vec![(0, 1, 10), (1, 2, 20), (0, 2, 30)],
        };
        assert_eq!(kruskal_weight(&g), 30);
    }

    #[test]
    fn road_graph_is_connected_and_distinct() {
        let g = road_graph(6, 30, 42);
        assert_eq!(g.nodes, 36);
        let mut ws: Vec<u64> = g.edges.iter().map(|e| e.2).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), g.edges.len(), "weights must be distinct");
    }

    #[test]
    fn mst_matches_kruskal_under_both_schemes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let mut cfg = Cfg::new(BaseCfg::new(4, scheme));
            cfg.side = 6;
            run(&cfg);
        }
    }

    #[test]
    fn single_thread_mst() {
        let mut cfg = Cfg::new(BaseCfg::new(1, Scheme::CommTm));
        cfg.side = 5;
        run(&cfg);
    }
}
