//! genome (paper Sec. VII, Table II): gene sequencing whose first phase
//! deduplicates DNA segments through a hash set. The paper compiles genome
//! with *resizable* hash tables whose remaining-space bookkeeping is a
//! bounded 64-bit ADD counter — the conditionally-commutative operation
//! that benefits from gather requests (Table II marks genome as a gather
//! user; CommTM wins 3.0x at 128 threads).
//!
//! This reproduction implements the segment-dedup phase faithfully: chained
//! hash-set buckets in simulated memory, per-thread node pools, and a
//! shared remaining-space counter decremented with the paper's bounded
//! `decrement` (labeled load → gather → plain load fallback).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for genome (the paper runs -g4096 -s64 -n640000; scaled
/// defaults keep the duplicate ratio).
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total segments processed (with duplicates).
    pub segments: u64,
    /// Number of distinct segment values.
    pub unique: u64,
    /// Hash-set buckets.
    pub buckets: u64,
}

impl Cfg {
    /// A scaled default with the paper's roughly 10:1 duplicate ratio.
    pub fn new(base: BaseCfg) -> Self {
        Cfg {
            base,
            segments: 600,
            unique: 64,
            buckets: 128,
        }
    }
}

/// Per-thread tallies for the oracle.
#[derive(Clone, Default)]
struct Tally {
    inserted: u64,
    duplicates: u64,
    overflows: u64,
}

const R_I: usize = 0;
const R_CUR: usize = 1;
const NODE_BYTES: u64 = 64; // key at +0, next at +8

/// Runs genome's dedup phase; verifies set contents and counter
/// conservation.
///
/// # Panics
///
/// Panics if the set doesn't contain exactly the unique segments, or the
/// remaining-space counter breaks conservation.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    buckets: Addr,
    remaining: Addr,
    capacity: u64,
    host_segments: Vec<u64>,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    let buckets = m.heap_mut().alloc(cfg.buckets * 8, 64);
    let remaining = m.heap_mut().alloc_lines(1);
    // Capacity: the paper's tables (-g4096) are sized well above the
    // insert count, so the remaining-space counter stays comfortably
    // positive and gathers are needed only when per-core partials run
    // low — twice the unique count models that.
    let capacity = cfg.unique * 2 + 16;
    m.poke(remaining, capacity);

    // Host-side segment stream: unique values interleaved, every value
    // appearing at least once.
    let seg_stream = m.heap_mut().alloc(cfg.segments * 8, 64);
    let mut host_segments = Vec::with_capacity(cfg.segments as usize);
    {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(cfg.base.seed ^ 0x6765_6e6f);
        for i in 0..cfg.segments {
            let u = if i < cfg.unique {
                i
            } else {
                rng.random_range(0..cfg.unique)
            };
            let value = u.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1; // non-zero keys
            host_segments.push(value);
            m.poke(seg_stream.offset_words(i), value);
        }
    }

    let threads = cfg.base.threads;
    let nbuckets = cfg.buckets;
    for t in 0..threads {
        let lo = (cfg.segments as usize) * t / threads;
        let hi = (cfg.segments as usize) * (t + 1) / threads;
        let pool = m
            .heap_mut()
            .alloc(((hi - lo).max(1) as u64) * NODE_BYTES, 64);
        let mut p = Program::builder();
        if hi > lo {
            let pool_base = pool.raw();
            p.ctl(move |c| {
                c.regs[R_I] = lo as u64;
                c.regs[R_CUR] = pool_base;
                Ctl::Next
            });
            let top = p.here();
            p.tx(move |c| {
                let i = c.reg(R_I);
                let key = c.load(seg_stream.offset_words(i));
                let h = key.wrapping_mul(0xff51_afd7_ed55_8ccd) % nbuckets;
                let bucket = buckets.offset_words(h);
                // Probe the chain for a duplicate.
                let mut node = c.load(bucket);
                let mut dup = false;
                let mut hops = 0;
                while node != 0 && hops < 128 {
                    if c.load(Addr::new(node)) == key {
                        dup = true;
                        break;
                    }
                    node = c.load(Addr::new(node + 8));
                    hops += 1;
                }
                c.work(12);
                if dup {
                    c.defer(|s: &mut Tally| s.duplicates += 1);
                } else {
                    // Bounded decrement of the remaining-space counter
                    // (paper Sec. IV), then link a fresh node.
                    let mut v = c.load_l(add, remaining);
                    if v == 0 {
                        v = c.load_gather(add, remaining);
                    }
                    if v == 0 {
                        v = c.load(remaining);
                    }
                    if v == 0 {
                        c.defer(|s: &mut Tally| s.overflows += 1);
                    } else {
                        c.store_l(add, remaining, v - 1);
                        let node = c.reg(R_CUR);
                        c.set_reg(R_CUR, node + NODE_BYTES);
                        c.store(Addr::new(node), key);
                        let head = c.load(bucket);
                        c.store(Addr::new(node + 8), head);
                        c.store(bucket, node);
                        c.defer(|s: &mut Tally| s.inserted += 1);
                    }
                }
            });
            p.ctl(move |c| {
                c.regs[R_I] += 1;
                if (c.regs[R_I] as usize) < hi {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), Tally::default());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            buckets,
            remaining,
            capacity,
            host_segments,
        }),
    }
}

/// The oracle: the set contains exactly the unique segments once each,
/// and the remaining-space counter conserves capacity.
///
/// # Panics
///
/// Panics on lost/duplicated keys or a conservation violation.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let aux = out.aux.downcast_ref::<Aux>().expect("genome aux");
    let (buckets, remaining, capacity) = (aux.buckets, aux.remaining, aux.capacity);
    let host_segments = aux.host_segments.clone();
    let m = &mut out.machine;
    let threads = cfg.base.threads;
    let mut found = std::collections::HashSet::new();
    for h in 0..cfg.buckets {
        let mut node = m.read_word(buckets.offset_words(h));
        let mut hops = 0;
        while node != 0 {
            let key = m.read_word(Addr::new(node));
            assert!(found.insert(key), "duplicate key {key:#x} in the set");
            node = m.read_word(Addr::new(node + 8));
            hops += 1;
            assert!(hops <= cfg.segments, "bucket chain must be acyclic");
        }
    }
    let expected: std::collections::HashSet<u64> = host_segments.iter().copied().collect();
    assert_eq!(
        found, expected,
        "set contents must equal the unique segments"
    );

    let mut inserted = 0u64;
    let mut overflows = 0u64;
    let mut processed = 0u64;
    for t in 0..threads {
        let s = m.env(t).user::<Tally>();
        inserted += s.inserted;
        overflows += s.overflows;
        processed += s.inserted + s.duplicates + s.overflows;
    }
    assert_eq!(processed, cfg.segments);
    assert_eq!(
        overflows, 0,
        "capacity has slack; overflow means lost space"
    );
    assert_eq!(inserted, expected.len() as u64);
    assert_eq!(
        m.read_word(remaining),
        capacity - inserted,
        "remaining-space conservation"
    );
    m.check_invariants().expect("coherence invariants");
}

/// The registered genome application (Table II).
pub struct Genome;

impl Genome {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mut cfg = Cfg::new(base);
        cfg.segments = p.u64("segments");
        cfg.unique = p.u64("unique");
        cfg.buckets = p.u64("buckets");
        cfg
    }
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::App
    }

    fn summary(&self) -> &'static str {
        "sequence dedup over a hash set with gathers"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let space = Addr::new(0x1000); // bounded remaining-space counter
        let bucket = |i: u64| Addr::new(0x2000 + 64 * i);
        let insert = move |core: usize, b: u64| {
            move |ctx: &mut ClaimCtx, _inp: &Inputs| {
                ctx.txn(core, |t| {
                    // Claim a slot from the bounded remaining-space counter
                    // (gather, then plain-read fallback), then count the
                    // segment in its bucket.
                    let mut v = t.load_l(add, space);
                    if v == 0 {
                        v = t.gather(add, space);
                    }
                    if v == 0 {
                        v = t.load(space);
                    }
                    if v > 0 {
                        t.store_l(add, space, v - 1);
                        let c = t.load_l(add, bucket(b));
                        t.store_l(add, bucket(b), c + 1);
                    }
                });
            }
        };
        vec![Claim::new(
            "genome/segment-insertions-commute",
            "two hash-set segment insertions that both fit the remaining \
             space commute: bucket counts and the space counter agree in \
             either order",
        )
        .label(labels::add())
        .input("space", 2..=64)
        .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| ctx.poke(space, inp.get("space")))
        .op_a(insert(0, 0))
        .op_b(insert(1, 1))
        .probe(move |ctx: &mut ClaimCtx| {
            vec![
                ctx.logical_w0(space),
                ctx.read(0, space),
                ctx.read(0, bucket(0)),
                ctx.read(0, bucket(1)),
            ]
        })]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale(
                "segments",
                2_000,
                "total segments processed (with duplicates)",
            )
            .u64_per_scale("unique", 200, "distinct segment values")
            .u64_per_scale("buckets", 512, "hash-set buckets")
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn dedup_correct_under_both_schemes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let mut cfg = Cfg::new(BaseCfg::new(4, scheme));
            cfg.segments = 200;
            cfg.unique = 32;
            run(&cfg);
        }
    }

    #[test]
    fn single_thread_dedup() {
        let mut cfg = Cfg::new(BaseCfg::new(1, Scheme::CommTm));
        cfg.segments = 100;
        cfg.unique = 16;
        run(&cfg);
    }

    #[test]
    fn gathers_fire_under_commtm() {
        let mut cfg = Cfg::new(BaseCfg::new(8, Scheme::CommTm));
        cfg.segments = 400;
        cfg.unique = 128;
        let r = run(&cfg);
        assert!(r.core_totals().labeled_ops > 0);
    }
}
