//! vacation (paper Sec. VII, Table II): an OLTP-style travel reservation
//! system over car/flight/room relations. Client transactions query
//! availability and make or cancel reservations; the paper's resizable
//! reservation tables account free slots with a bounded 64-bit ADD counter
//! that benefits from gather requests (Table II; CommTM +45% at 128
//! threads).
//!
//! Transactions here mirror STAMP's shapes: mostly-read queries, and
//! updates that decrement an item's `numFree` (plain RMW, item-level
//! contention is rare across many items) plus the relation's shared
//! remaining-slot counter (the commutative hotspot, bounded-decremented
//! exactly like the paper's Sec. IV counter).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Relations in the system.
const RELATIONS: usize = 3; // cars, flights, rooms

/// Configuration for vacation (the paper runs -n4 -q60 -u90 -r32768
/// -t8192; scaled defaults keep the mix shape).
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Client transactions in total.
    pub tasks: u64,
    /// Items per relation.
    pub items: u64,
    /// Percent of transactions that are read-only queries (paper -q60
    /// means 60% of *relations* are queried; we use it as the query mix).
    pub query_pct: u64,
    /// Percent of update transactions that make (vs cancel) reservations
    /// (paper -u90).
    pub make_pct: u64,
}

impl Cfg {
    /// A scaled default with the paper's mix.
    pub fn new(base: BaseCfg) -> Self {
        Cfg {
            base,
            tasks: 600,
            items: 64,
            query_pct: 60,
            make_pct: 90,
        }
    }
}

/// Per-thread reservation book: held reservations per relation, and item
/// ids for cancellations.
#[derive(Clone, Default)]
struct Book {
    held: Vec<Vec<u64>>, // per relation: item ids reserved
    failed: u64,
}

const R_I: usize = 0;
const R_OP: usize = 1; // 0 = query, 1 = make, 2 = cancel
const R_REL: usize = 2;
const R_ITEM: usize = 3;

/// Runs vacation; verifies seat and slot conservation per relation.
///
/// # Panics
///
/// Panics if any relation's free seats or remaining-slot counter disagree
/// with the reservations actually held.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    num_free: Vec<Addr>,
    slots: Vec<Addr>,
    seats_per_item: u64,
    slot_capacity: u64,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    let items = cfg.items;
    // Per relation: numFree array, price array, remaining-slot counter.
    let num_free: Vec<Addr> = (0..RELATIONS)
        .map(|_| m.heap_mut().alloc(items * 8, 64))
        .collect();
    let price: Vec<Addr> = (0..RELATIONS)
        .map(|_| m.heap_mut().alloc(items * 8, 64))
        .collect();
    let slots: Vec<Addr> = (0..RELATIONS)
        .map(|_| m.heap_mut().alloc_lines(1))
        .collect();
    let seats_per_item = 4u64;
    let slot_capacity = cfg.tasks + 64;
    for r in 0..RELATIONS {
        for i in 0..items {
            m.poke(num_free[r].offset_words(i), seats_per_item);
            m.poke(
                price[r].offset_words(i),
                100 + (i * 7 + r as u64 * 13) % 900,
            );
        }
        m.poke(slots[r], slot_capacity);
    }

    let threads = cfg.base.threads;
    for t in 0..threads {
        let iters = cfg.base.share(cfg.tasks, t);
        let num_free = num_free.clone();
        let price = price.clone();
        let slots = slots.clone();
        let (qp, mp) = (cfg.query_pct, cfg.make_pct);
        let mut p = Program::builder();
        if iters > 0 {
            let top = p.here();
            // Choose the operation and target.
            p.ctl(move |c| {
                let rel = c.rand_below(RELATIONS as u64);
                c.regs[R_REL] = rel;
                c.regs[R_ITEM] = c.rand_below(items);
                let d = c.rand_below(100);
                let make_draw = c.rand_below(100);
                let book = c.user::<Book>();
                let can_cancel = !book.held[rel as usize].is_empty();
                c.regs[R_OP] = if d < qp {
                    0
                } else if make_draw < mp || !can_cancel {
                    1
                } else {
                    // Cancel the oldest held reservation in this relation.
                    c.regs[R_ITEM] = book.held[rel as usize][0];
                    2
                };
                Ctl::Next
            });
            p.tx(move |c| {
                let rel = c.reg(R_REL) as usize;
                let item = c.reg(R_ITEM) % items;
                match c.reg(R_OP) {
                    // Query: read-only scan of a few items' price and
                    // availability.
                    0 => {
                        for k in 0..4u64 {
                            let i = (item + k * 7) % items;
                            let _p = c.load(price[rel].offset_words(i));
                            let _f = c.load(num_free[rel].offset_words(i));
                        }
                        c.work(20);
                    }
                    // Make a reservation: seat decrement (plain RMW) plus
                    // the bounded remaining-slot decrement (Sec. IV).
                    1 => {
                        let fa = num_free[rel].offset_words(item);
                        let free = c.load(fa);
                        let _p = c.load(price[rel].offset_words(item));
                        c.work(16);
                        if free == 0 {
                            c.defer(move |b: &mut Book| b.failed += 1);
                        } else {
                            let mut v = c.load_l(add, slots[rel]);
                            if v == 0 {
                                v = c.load_gather(add, slots[rel]);
                            }
                            if v == 0 {
                                v = c.load(slots[rel]);
                            }
                            if v == 0 {
                                c.defer(move |b: &mut Book| b.failed += 1);
                            } else {
                                c.store(fa, free - 1);
                                c.store_l(add, slots[rel], v - 1);
                                c.defer(move |b: &mut Book| b.held[rel].push(item));
                            }
                        }
                    }
                    // Cancel: seat increment plus slot increment (always
                    // commutes).
                    _ => {
                        let fa = num_free[rel].offset_words(item);
                        let free = c.load(fa);
                        c.store(fa, free + 1);
                        let v = c.load_l(add, slots[rel]);
                        c.store_l(add, slots[rel], v + 1);
                        c.work(12);
                        c.defer(move |b: &mut Book| {
                            let held = &mut b.held[rel];
                            if let Some(pos) = held.iter().position(|&x| x == item) {
                                held.remove(pos);
                            }
                        });
                    }
                }
            });
            p.ctl(move |c| {
                c.regs[R_I] += 1;
                if c.regs[R_I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(
            t,
            p.build(),
            Book {
                held: vec![Vec::new(); RELATIONS],
                failed: 0,
            },
        );
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            num_free,
            slots,
            seats_per_item,
            slot_capacity,
        }),
    }
}

/// The conservation oracle: per relation, seats and slots must both
/// account exactly for the reservations held across all threads.
///
/// # Panics
///
/// Panics on a conservation violation.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let aux = out.aux.downcast_ref::<Aux>().expect("vacation aux");
    let (num_free, slots) = (aux.num_free.clone(), aux.slots.clone());
    let (seats_per_item, slot_capacity) = (aux.seats_per_item, aux.slot_capacity);
    let m = &mut out.machine;
    let threads = cfg.base.threads;
    let items = cfg.items;
    for r in 0..RELATIONS {
        let mut held_per_item = vec![0u64; items as usize];
        let mut held_total = 0u64;
        for t in 0..threads {
            for &i in &m.env(t).user::<Book>().held[r] {
                held_per_item[i as usize] += 1;
                held_total += 1;
            }
        }
        for i in 0..items {
            let free = m.read_word(num_free[r].offset_words(i));
            assert_eq!(
                free + held_per_item[i as usize],
                seats_per_item,
                "relation {r} item {i}: seat conservation"
            );
        }
        let rem = m.read_word(slots[r]);
        assert_eq!(
            rem + held_total,
            slot_capacity,
            "relation {r}: slot conservation"
        );
    }
    m.check_invariants().expect("coherence invariants");
}

/// The registered vacation application (Table II).
pub struct Vacation;

impl Vacation {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mut cfg = Cfg::new(base);
        cfg.tasks = p.u64("tasks");
        cfg.items = p.u64("items");
        cfg.query_pct = p.u64("query_pct");
        cfg.make_pct = p.u64("make_pct");
        cfg
    }
}

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::App
    }

    fn summary(&self) -> &'static str {
        "travel reservations with bounded remaining-space counters"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let seats = Addr::new(0x1000);
        let booked = Addr::new(0x1040);
        let reserve = move |core: usize, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let amt = inp.get(key);
                ctx.txn(core, |t| {
                    // Bounded seat debit (gather, then plain-read
                    // fallback), mirrored by a booked-count credit.
                    let mut v = t.load_l(add, seats);
                    if v < amt {
                        v = t.gather(add, seats);
                    }
                    if v < amt {
                        v = t.load(seats);
                    }
                    if v >= amt {
                        t.store_l(add, seats, v - amt);
                        let b = t.load_l(add, booked);
                        t.store_l(add, booked, b + amt);
                    }
                });
            }
        };
        vec![Claim::new(
            "vacation/reservations-commute",
            "two reservations that both fit the free-seat pool commute: \
             seats and bookings agree (and conserve) in either order",
        )
        .label(labels::add())
        // free >= amta + amtb, so both reservations always succeed.
        .input("free", 20..=1_000)
        .input("amta", 1..=10)
        .input("amtb", 1..=10)
        .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| ctx.poke(seats, inp.get("free")))
        .op_a(reserve(0, "amta"))
        .op_b(reserve(1, "amtb"))
        .probe(move |ctx: &mut ClaimCtx| {
            vec![
                ctx.logical_w0(seats),
                ctx.logical_w0(booked),
                ctx.read(0, seats),
                ctx.read(0, booked),
            ]
        })]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale("tasks", 600, "client transactions in total")
            .u64("items", 64, "items per relation")
            .u64("query_pct", 60, "percent of read-only query transactions")
            .u64(
                "make_pct",
                90,
                "percent of updates that make (vs cancel) reservations",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn reservations_conserve_under_both_schemes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let mut cfg = Cfg::new(BaseCfg::new(4, scheme));
            cfg.tasks = 200;
            run(&cfg);
        }
    }

    #[test]
    fn single_thread_reservations() {
        let mut cfg = Cfg::new(BaseCfg::new(1, Scheme::CommTm));
        cfg.tasks = 80;
        run(&cfg);
    }

    #[test]
    fn heavy_update_mix_still_conserves() {
        let mut cfg = Cfg::new(BaseCfg::new(8, Scheme::CommTm));
        cfg.tasks = 300;
        cfg.query_pct = 10;
        run(&cfg);
    }
}
