//! kmeans (paper Sec. VII, Table II): iterative clustering where each
//! point-assignment transaction adds the point's coordinates into its
//! cluster's centroid accumulators — a large number of commutative updates
//! (32b ADD / FP ADD in the paper; 64-bit here per DESIGN.md §5) that
//! serialize conventional HTMs and scale under CommTM (the paper's
//! strongest result, 3.4x at 128 threads).
//!
//! Structure per iteration: an assignment phase (read centers, pick the
//! nearest, record the assignment), a transactional accumulation phase
//! (FPADD into `sum[c][d]`, ADD into `count[c]`), a barrier, and a
//! recomputation phase (owners divide sums by counts and reset them).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs, ProbeEquality};
use crate::ds::emit_barrier;
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for kmeans (the paper runs n16384-d24-c16 for up to 15
/// iterations; defaults here are scaled for simulation time).
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Number of points.
    pub n: usize,
    /// Dimensions per point (≤ 16).
    pub d: usize,
    /// Number of clusters.
    pub k: usize,
    /// Iterations (fixed, for determinism; the paper uses a convergence
    /// threshold).
    pub iters: usize,
}

impl Cfg {
    /// A scaled-down default shaped like the paper's input.
    pub fn new(base: BaseCfg) -> Self {
        Cfg {
            base,
            n: 256,
            d: 4,
            k: 8,
            iters: 3,
        }
    }
}

// Register assignments (R_PHASE also uses R_PHASE+1 as barrier scratch).
const R_PHASE: usize = 0;
const R_P: usize = 2;
const R_C: usize = 3;
const R_ITER: usize = 4;

/// Runs kmeans; verifies the final centroids against a host-side
/// recomputation from the recorded assignments.
///
/// # Panics
///
/// Panics if any final centroid deviates from the oracle beyond
/// floating-point reassociation tolerance, or if assignments don't sum to
/// `n`.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    assign: Addr,
    centers: Addr,
    host_points: Vec<f64>,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    assert!(cfg.k <= cfg.n, "need at least one point per cluster seed");
    assert!(cfg.d <= 16, "dimension cap for the assignment closure");
    let mut b = cfg.base.builder();
    let fpadd = b.register_label(labels::fp_add()).expect("label budget");
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    let (n, d, k) = (cfg.n, cfg.d, cfg.k);
    let points = m.heap_mut().alloc(n as u64 * d as u64 * 8, 64);
    let assign = m.heap_mut().alloc(n as u64 * 8, 64);
    let centers = m.heap_mut().alloc(k as u64 * d as u64 * 8, 64);
    let sums: Vec<Addr> = (0..k)
        .map(|_| m.heap_mut().alloc(d as u64 * 8, 64))
        .collect();
    let counts: Vec<Addr> = (0..k).map(|_| m.heap_mut().alloc_lines(1)).collect();
    let barrier = m.heap_mut().alloc_lines(1);

    // Host-side input generation: blobs around k anchors.
    let mut host_points = vec![0f64; n * d];
    {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(cfg.base.seed ^ 0x6b6d_6561_6e73);
        for p in 0..n {
            let anchor = p % k;
            for dim in 0..d {
                let v = (anchor * 10 + dim) as f64 + rng.random_range(-2.0..2.0);
                host_points[p * d + dim] = v;
                m.poke(points.offset_words((p * d + dim) as u64), v.to_bits());
            }
        }
    }
    // Seed centers with the first k points.
    for c in 0..k {
        for dim in 0..d {
            m.poke(
                centers.offset_words((c * d + dim) as u64),
                host_points[c * d + dim].to_bits(),
            );
        }
    }

    let threads = cfg.base.threads;
    for t in 0..threads {
        let lo = n * t / threads;
        let hi = n * (t + 1) / threads;
        let mut p = Program::builder();

        let iter_top = p.here();
        p.ctl(move |c| {
            c.regs[R_P] = lo as u64;
            Ctl::Next
        });
        let point_top = p.here();
        // Assignment: read the point and every center, pick the nearest.
        p.plain(move |c| {
            let pi = c.reg(R_P) as usize;
            let mut coords = [0f64; 16];
            for (dim, coord) in coords.iter_mut().enumerate().take(d) {
                *coord = f64::from_bits(c.load(points.offset_words((pi * d + dim) as u64)));
            }
            let mut best = (f64::INFINITY, 0usize);
            for cl in 0..k {
                let mut dist = 0f64;
                for (dim, coord) in coords.iter().enumerate().take(d) {
                    let cv = f64::from_bits(c.load(centers.offset_words((cl * d + dim) as u64)));
                    let delta = coord - cv;
                    dist += delta * delta;
                }
                if dist < best.0 {
                    best = (dist, cl);
                }
            }
            c.work(4 * (k * d) as u64); // distance arithmetic
            c.store(assign.offset_words(pi as u64), best.1 as u64);
            c.set_reg(R_C, best.1 as u64);
        });
        // Accumulate into the chosen cluster (the commutative hotspot).
        let sums_tx = sums.clone();
        let counts_tx = counts.clone();
        p.tx(move |c| {
            let pi = c.reg(R_P) as usize;
            let cl = (c.reg(R_C) as usize).min(k - 1);
            for dim in 0..d {
                let a = sums_tx[cl].offset_words(dim as u64);
                let cur = f64::from_bits(c.load_l(fpadd, a));
                let pv = f64::from_bits(c.load(points.offset_words((pi * d + dim) as u64)));
                c.store_l(fpadd, a, (cur + pv).to_bits());
            }
            let cnt = c.load_l(add, counts_tx[cl]);
            c.store_l(add, counts_tx[cl], cnt + 1);
        });
        p.ctl(move |c| {
            c.regs[R_P] += 1;
            if (c.regs[R_P] as usize) < hi {
                Ctl::Jump(point_top)
            } else {
                Ctl::Next
            }
        });
        emit_barrier(&mut p, barrier, threads as u64, R_PHASE);
        // Recompute owned clusters' centers and reset accumulators.
        let sums_rc = sums.clone();
        let counts_rc = counts.clone();
        p.plain(move |c| {
            for cl in (t..k).step_by(threads.max(1)) {
                let cnt = c.load(counts_rc[cl]);
                for dim in 0..d {
                    let s = f64::from_bits(c.load(sums_rc[cl].offset_words(dim as u64)));
                    if cnt > 0 {
                        let mean = s / cnt as f64;
                        c.store(centers.offset_words((cl * d + dim) as u64), mean.to_bits());
                    }
                    c.store(sums_rc[cl].offset_words(dim as u64), 0);
                }
                c.store(counts_rc[cl], 0);
            }
        });
        emit_barrier(&mut p, barrier, threads as u64, R_PHASE);
        let iters = cfg.iters as u64;
        p.ctl(move |c| {
            c.regs[R_ITER] += 1;
            if c.regs[R_ITER] < iters {
                Ctl::Jump(iter_top)
            } else {
                Ctl::Done
            }
        });
        m.set_program(t, p.build(), ());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            assign,
            centers,
            host_points,
        }),
    }
}

/// The oracle: recompute the final centers from the recorded assignments.
///
/// # Panics
///
/// Panics if any final centroid deviates beyond floating-point
/// reassociation tolerance.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let (n, d, k) = (cfg.n, cfg.d, cfg.k);
    let aux = out.aux.downcast_ref::<Aux>().expect("kmeans aux");
    let (assign, centers) = (aux.assign, aux.centers);
    let host_points = aux.host_points.clone();
    let m = &mut out.machine;
    let mut sums_h = vec![0f64; k * d];
    let mut counts_h = vec![0u64; k];
    for pi in 0..n {
        let cl = m.read_word(assign.offset_words(pi as u64)) as usize;
        assert!(cl < k, "assignment out of range");
        counts_h[cl] += 1;
        for dim in 0..d {
            sums_h[cl * d + dim] += host_points[pi * d + dim];
        }
    }
    assert_eq!(counts_h.iter().sum::<u64>(), n as u64);
    for cl in 0..k {
        if counts_h[cl] == 0 {
            continue;
        }
        for dim in 0..d {
            let want = sums_h[cl * d + dim] / counts_h[cl] as f64;
            let got = f64::from_bits(m.read_word(centers.offset_words((cl * d + dim) as u64)));
            let tol = 1e-6 * want.abs().max(1.0);
            assert!(
                (got - want).abs() <= tol,
                "center[{cl}][{dim}]: got {got}, want {want}"
            );
        }
    }
    m.check_invariants().expect("coherence invariants");
}

/// The registered kmeans application (Table II).
pub struct Kmeans;

impl Kmeans {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mut cfg = Cfg::new(base);
        cfg.n = p.u64("n") as usize;
        cfg.d = p.u64("d") as usize;
        cfg.k = p.u64("k") as usize;
        cfg.iters = p.u64("iters") as usize;
        cfg
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::App
    }

    fn summary(&self) -> &'static str {
        "clustering with commutative centroid updates"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let fpadd = LabelId::new(0);
        let acc = Addr::new(0x1000);
        // Inputs are drawn as integers and mapped onto f64 coordinates by
        // an exact power-of-two scale, so shrinking stays meaningful.
        let coord = |raw: u64| raw as f64 / 16.0;
        let accumulate = move |core: usize, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let x = coord(inp.get(key));
                ctx.txn(core, |t| {
                    let cur = f64::from_bits(t.load_l(fpadd, acc));
                    t.store_l(fpadd, acc, (cur + x).to_bits());
                });
            }
        };
        vec![Claim::new(
            "kmeans/centroid-accumulations-commute-within-tolerance",
            "FP ADD centroid accumulations are semantically, not bit-exactly, \
             commutative: probes compare within relative tolerance (the \
             paper's carve-out Coup cannot express)",
        )
        .label(labels::fp_add())
        .input("init", 0..=1_000_000)
        .input("xa", 1..=1_000_000)
        .input("xb", 1..=1_000_000)
        .equality(ProbeEquality::FpTolerance { rel: 1e-12 })
        .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| {
            ctx.poke(acc, coord(inp.get("init")).to_bits());
        })
        .op_a(accumulate(0, "xa"))
        .op_b(accumulate(1, "xb"))
        .probe(move |ctx: &mut ClaimCtx| vec![ctx.read(0, acc)])]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale("n", 192, "number of points")
            .u64("d", 4, "dimensions per point (max 16)")
            .u64("k", 8, "number of clusters")
            .u64("iters", 2, "fixed iteration count (for determinism)")
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn clusters_match_oracle_under_both_schemes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let mut cfg = Cfg::new(BaseCfg::new(4, scheme));
            cfg.n = 64;
            cfg.iters = 2;
            run(&cfg);
        }
    }

    #[test]
    fn single_thread_matches_oracle() {
        let mut cfg = Cfg::new(BaseCfg::new(1, Scheme::CommTm));
        cfg.n = 32;
        cfg.iters = 2;
        run(&cfg);
    }

    #[test]
    fn commtm_wastes_no_more_than_baseline() {
        let mut base_cfg = Cfg::new(BaseCfg::new(8, Scheme::Baseline));
        base_cfg.n = 96;
        base_cfg.iters = 2;
        let mut comm_cfg = base_cfg;
        comm_cfg.base = BaseCfg::new(8, Scheme::CommTm);
        let base = run(&base_cfg);
        let comm = run(&comm_cfg);
        assert!(comm.cycle_breakdown().aborted <= base.cycle_breakdown().aborted);
    }
}
