//! The paper's full TM applications (Sec. VII, Table II).

pub mod boruvka;
pub mod genome;
pub mod kmeans;
pub mod ssca2;
pub mod vacation;
