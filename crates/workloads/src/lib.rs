//! The CommTM paper's workloads, implemented on the `commtm` public API.
//!
//! # Microbenchmarks (paper Sec. VI)
//!
//! - [`micro::counter`] — concurrent increments to one shared counter
//!   (Fig. 9),
//! - [`micro::refcount`] — bounded non-negative reference counters, with
//!   and without gather requests (Fig. 10),
//! - [`micro::list`] — concurrent linked-list enqueues/dequeues (Fig. 12),
//! - [`micro::oput`] — ordered puts / priority updates (Fig. 13),
//! - [`micro::topk`] — top-K set insertions (Fig. 14).
//!
//! # Full applications (paper Sec. VII, Table II)
//!
//! - [`apps::boruvka`] — minimum spanning tree with OPUT/MIN/MAX/ADD,
//! - [`apps::kmeans`] — clustering with commutative centroid updates,
//! - [`apps::ssca2`] — graph kernel with rare global metadata updates,
//! - [`apps::genome`] — sequence dedup over a hash set with a bounded
//!   remaining-space counter (uses gathers),
//! - [`apps::vacation`] — travel reservations over relations with bounded
//!   remaining-space counters (uses gathers).
//!
//! Every workload runs on both [`commtm::Scheme`]s from the *same* program
//! (labels demote under the baseline), exposes a sequential **oracle**
//! over its results, and returns the [`commtm::RunReport`] the benchmark
//! harness turns into the paper's figures.
//!
//! # The workload API
//!
//! Each module also ships a unit struct implementing the [`Workload`]
//! trait — name, kind, summary, a typed declarative [`ParamSchema`], a
//! `run` over [`BaseCfg`] + resolved [`Params`], and the explicit
//! `oracle` hook. [`builtins`] enumerates them for registries; beyond the
//! paper's ten, [`micro::bank`] demonstrates a string-valued `mix`
//! parameter.

pub mod apps;
pub mod claims;
pub mod ds;
pub mod micro;
mod params;
mod spec;
mod workload;

pub use claims::{Claim, ClaimCtx, Inputs, OpOrder, ProbeEquality};
pub use params::{nearest, ParamDefault, ParamSchema, ParamSpec, ParamType, ParamValue, Params};
pub use spec::BaseCfg;
pub use workload::{builtins, RunOutcome, Workload, WorkloadKind};
