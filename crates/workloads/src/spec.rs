//! Common workload configuration.

use commtm::{MachineBuilder, Scheme, Tuning};

/// Parameters shared by every workload: thread count, scheme, seed, and
/// optional machine-parameter overrides.
#[derive(Clone, Copy, Debug)]
pub struct BaseCfg {
    /// Number of threads (= active cores, 1–128).
    pub threads: usize,
    /// Conflict-detection scheme.
    pub scheme: Scheme,
    /// Deterministic seed.
    pub seed: u64,
    /// Machine-parameter overrides (latencies, backoff, cycle limit); the
    /// defaults leave the paper's Table I configuration untouched.
    pub tuning: Tuning,
}

impl BaseCfg {
    /// A config for `threads` threads under `scheme` with the default
    /// seed.
    pub fn new(threads: usize, scheme: Scheme) -> Self {
        BaseCfg {
            threads,
            scheme,
            seed: 0xC0FFEE,
            tuning: Tuning::default(),
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides machine parameters.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Starts a [`MachineBuilder`] for this config (threads, scheme, seed,
    /// tuning applied). Every workload constructs its machine through this
    /// so that experiment sweeps can perturb the machine uniformly.
    pub fn builder(&self) -> MachineBuilder {
        self.builder_for(self.scheme)
    }

    /// Like [`BaseCfg::builder`] but under an explicit scheme (used by
    /// workloads whose variant dictates the scheme, e.g. refcount).
    pub fn builder_for(&self, scheme: Scheme) -> MachineBuilder {
        let mut b = MachineBuilder::new(self.threads, scheme).seed(self.seed);
        b.config_mut().apply_tuning(&self.tuning);
        b
    }

    /// Splits `total` work items across threads; thread `t` receives the
    /// remainder-adjusted share (shares differ by at most one).
    pub fn share(&self, total: u64, t: usize) -> u64 {
        let n = self.threads as u64;
        let base = total / n;
        let extra = total % n;
        base + u64::from((t as u64) < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        let cfg = BaseCfg::new(7, Scheme::CommTm);
        let total = 1000u64;
        let sum: u64 = (0..7).map(|t| cfg.share(total, t)).sum();
        assert_eq!(sum, total);
        // Shares are balanced.
        let shares: Vec<u64> = (0..7).map(|t| cfg.share(total, t)).collect();
        assert!(shares.iter().max().unwrap() - shares.iter().min().unwrap() <= 1);
    }

    #[test]
    fn builder_applies_tuning() {
        let tuning = Tuning {
            mem_latency: Some(999),
            max_cycles: Some(123),
            ..Tuning::default()
        };
        let cfg = BaseCfg::new(2, Scheme::Baseline).with_tuning(tuning);
        let m = cfg.builder().build();
        assert_eq!(m.config().proto.mem_latency, 999);
        assert_eq!(m.config().max_cycles, 123);
        assert_eq!(m.config().threads, 2);
    }
}
