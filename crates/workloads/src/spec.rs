//! Common workload configuration.

use commtm::Scheme;

/// Parameters shared by every workload: thread count, scheme, seed.
#[derive(Clone, Copy, Debug)]
pub struct BaseCfg {
    /// Number of threads (= active cores, 1–128).
    pub threads: usize,
    /// Conflict-detection scheme.
    pub scheme: Scheme,
    /// Deterministic seed.
    pub seed: u64,
}

impl BaseCfg {
    /// A config for `threads` threads under `scheme` with the default
    /// seed.
    pub fn new(threads: usize, scheme: Scheme) -> Self {
        BaseCfg { threads, scheme, seed: 0xC0FFEE }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Splits `total` work items across threads; thread `t` receives the
    /// remainder-adjusted share (shares differ by at most one).
    pub fn share(&self, total: u64, t: usize) -> u64 {
        let n = self.threads as u64;
        let base = total / n;
        let extra = total % n;
        base + u64::from((t as u64) < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        let cfg = BaseCfg::new(7, Scheme::CommTm);
        let total = 1000u64;
        let sum: u64 = (0..7).map(|t| cfg.share(total, t)).sum();
        assert_eq!(sum, total);
        // Shares are balanced.
        let shares: Vec<u64> = (0..7).map(|t| cfg.share(total, t)).collect();
        assert!(shares.iter().max().unwrap() - shares.iter().min().unwrap() <= 1);
    }
}
