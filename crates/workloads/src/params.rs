//! Typed workload parameters and the declarative parameter schema.
//!
//! A workload declares its parameter surface as a [`ParamSchema`]: one
//! [`ParamSpec`] per parameter with a type, a default (possibly scale- or
//! thread-dependent), and a one-line doc string. Scenario layers resolve
//! overrides against the schema *before* any cell runs, so an unknown
//! name or an ill-typed value fails at validation time with a
//! schema-derived message — never as a panic in the middle of a sweep.

use std::fmt;

/// A typed parameter value: integer sizes, fractions, switches, and named
/// mixes.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// A non-negative integer (sizes, counts, percentages).
    U64(u64),
    /// A floating-point value (rates, fractions).
    F64(f64),
    /// A boolean switch.
    Bool(bool),
    /// A string (named mixes, variant selectors).
    Str(String),
}

impl ParamValue {
    /// The value's [`ParamType`].
    pub fn ty(&self) -> ParamType {
        match self {
            ParamValue::U64(_) => ParamType::U64,
            ParamValue::F64(_) => ParamType::F64,
            ParamValue::Bool(_) => ParamType::Bool,
            ParamValue::Str(_) => ParamType::Str,
        }
    }

    /// The value as a u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ParamValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an f64 (u64 widens losslessly enough for parameter
    /// use).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::U64(v) => Some(*v as f64),
            ParamValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::U64(v)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// The declared type of a parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// Non-negative integer.
    U64,
    /// Floating-point number.
    F64,
    /// Boolean switch (accepts `0`/`1` integers for TOML back-compat).
    Bool,
    /// String.
    Str,
}

impl ParamType {
    /// The spelling used in schema dumps and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ParamType::U64 => "u64",
            ParamType::F64 => "f64",
            ParamType::Bool => "bool",
            ParamType::Str => "string",
        }
    }
}

/// Named typed parameters for one workload.
///
/// Later entries shadow earlier ones, so overrides are "set wins".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Params(Vec<(String, ParamValue)>);

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Params(Vec::new())
    }

    /// Sets (or shadows) a parameter.
    pub fn set(&mut self, name: &str, value: impl Into<ParamValue>) -> &mut Self {
        self.0.retain(|(n, _)| n != name);
        self.0.push((name.to_string(), value.into()));
        self
    }

    /// Looks a parameter up.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.0.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks a u64 parameter up.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(ParamValue::as_u64)
    }

    /// A required u64 parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is absent or not a u64. Workload runners
    /// only see parameter sets already resolved against their schema
    /// (see [`crate::ParamSchema::resolve`]), which makes this
    /// unreachable for declared parameters — reaching it means the
    /// workload read a name its schema does not declare.
    pub fn u64(&self, name: &str) -> u64 {
        self.get_u64(name)
            .unwrap_or_else(|| panic!("workload read undeclared or non-u64 parameter {name:?}"))
    }

    /// A required f64 parameter (u64 values widen).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Params::u64`].
    pub fn f64(&self, name: &str) -> f64 {
        self.get(name)
            .and_then(ParamValue::as_f64)
            .unwrap_or_else(|| panic!("workload read undeclared or non-f64 parameter {name:?}"))
    }

    /// A required bool parameter.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Params::u64`].
    pub fn flag(&self, name: &str) -> bool {
        self.get(name)
            .and_then(ParamValue::as_bool)
            .unwrap_or_else(|| panic!("workload read undeclared or non-bool parameter {name:?}"))
    }

    /// A required string parameter.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Params::u64`].
    pub fn text(&self, name: &str) -> &str {
        self.get(name)
            .and_then(ParamValue::as_str)
            .unwrap_or_else(|| panic!("workload read undeclared or non-string parameter {name:?}"))
    }

    /// Iterates parameters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Whether no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Merges `overrides` on top of `self` (overrides win).
    pub fn overridden_by(&self, overrides: &Params) -> Params {
        let mut out = self.clone();
        for (n, v) in overrides.iter() {
            out.set(n, v.clone());
        }
        out
    }
}

impl<V: Into<ParamValue>> FromIterator<(&'static str, V)> for Params {
    fn from_iter<I: IntoIterator<Item = (&'static str, V)>>(iter: I) -> Self {
        let mut p = Params::new();
        for (n, v) in iter {
            p.set(n, v);
        }
        p
    }
}

/// How a parameter's default derives from the sweep's scale factor and
/// thread count.
#[derive(Clone, Debug)]
pub enum ParamDefault {
    /// A fixed value, independent of scale and threads.
    Fixed(ParamValue),
    /// `base × scale` (operation counts; `scale = 500` ≈ the paper's
    /// full 10M-operation runs).
    PerScale(u64),
    /// `base × threads` (per-thread footprints, e.g. warm-start
    /// populations).
    PerThread(u64),
    /// An arbitrary function of (scale, threads) — the escape hatch for
    /// defaults that are neither fixed nor a plain multiple.
    Computed(fn(scale: u64, threads: usize) -> ParamValue),
}

impl ParamDefault {
    /// The default value at a given scale and thread count.
    pub fn resolve(&self, scale: u64, threads: usize) -> ParamValue {
        match self {
            ParamDefault::Fixed(v) => v.clone(),
            ParamDefault::PerScale(base) => ParamValue::U64(base * scale),
            ParamDefault::PerThread(base) => ParamValue::U64(base * threads as u64),
            ParamDefault::Computed(f) => f(scale, threads),
        }
    }

    /// A short human-readable rendering (`20000×scale`, `48×threads`,
    /// `"mixed"`, `f(scale, threads)`).
    pub fn render(&self) -> String {
        match self {
            ParamDefault::Fixed(v) => v.to_string(),
            ParamDefault::PerScale(base) => format!("{base}×scale"),
            ParamDefault::PerThread(base) => format!("{base}×threads"),
            ParamDefault::Computed(_) => "f(scale, threads)".to_string(),
        }
    }
}

/// One declared parameter: name, type, default, and a one-line doc.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    /// Parameter name as spelled in TOML and `--param` overrides.
    pub name: &'static str,
    /// Declared type; overrides must coerce to it.
    pub ty: ParamType,
    /// Default at a given scale and thread count.
    pub default: ParamDefault,
    /// One-line description shown by `commtm-lab workloads`.
    pub doc: &'static str,
    /// For string parameters: the closed set of accepted values (named
    /// mixes). `None` accepts any string.
    pub choices: Option<&'static [&'static str]>,
}

/// A workload's declared parameter surface, in declaration order.
#[derive(Clone, Debug, Default)]
pub struct ParamSchema(Vec<ParamSpec>);

impl ParamSchema {
    /// An empty schema.
    pub fn new() -> Self {
        ParamSchema(Vec::new())
    }

    fn push(mut self, spec: ParamSpec) -> Self {
        debug_assert!(
            !self.0.iter().any(|s| s.name == spec.name),
            "duplicate parameter {:?}",
            spec.name
        );
        self.0.push(spec);
        self
    }

    /// Declares a fixed-default u64 parameter.
    pub fn u64(self, name: &'static str, default: u64, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::U64,
            default: ParamDefault::Fixed(ParamValue::U64(default)),
            doc,
            choices: None,
        })
    }

    /// Declares a u64 parameter whose default is `base × scale`.
    pub fn u64_per_scale(self, name: &'static str, base: u64, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::U64,
            default: ParamDefault::PerScale(base),
            doc,
            choices: None,
        })
    }

    /// Declares a u64 parameter whose default is `base × threads`.
    pub fn u64_per_thread(self, name: &'static str, base: u64, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::U64,
            default: ParamDefault::PerThread(base),
            doc,
            choices: None,
        })
    }

    /// Declares a u64 parameter with a computed default.
    pub fn u64_computed(
        self,
        name: &'static str,
        default: fn(u64, usize) -> ParamValue,
        doc: &'static str,
    ) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::U64,
            default: ParamDefault::Computed(default),
            doc,
            choices: None,
        })
    }

    /// Declares an f64 parameter.
    pub fn f64(self, name: &'static str, default: f64, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::F64,
            default: ParamDefault::Fixed(ParamValue::F64(default)),
            doc,
            choices: None,
        })
    }

    /// Declares a bool parameter.
    pub fn flag(self, name: &'static str, default: bool, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::Bool,
            default: ParamDefault::Fixed(ParamValue::Bool(default)),
            doc,
            choices: None,
        })
    }

    /// Declares a string parameter.
    pub fn text(self, name: &'static str, default: &'static str, doc: &'static str) -> Self {
        self.push(ParamSpec {
            name,
            ty: ParamType::Str,
            default: ParamDefault::Fixed(ParamValue::Str(default.to_string())),
            doc,
            choices: None,
        })
    }

    /// Declares a string parameter restricted to a closed set of named
    /// values (e.g. a workload mix). Values outside the set are rejected
    /// at validation time.
    pub fn text_choices(
        self,
        name: &'static str,
        default: &'static str,
        choices: &'static [&'static str],
        doc: &'static str,
    ) -> Self {
        debug_assert!(choices.contains(&default), "default must be a choice");
        self.push(ParamSpec {
            name,
            ty: ParamType::Str,
            default: ParamDefault::Fixed(ParamValue::Str(default.to_string())),
            doc,
            choices: Some(choices),
        })
    }

    /// The declared parameters, in declaration order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.0
    }

    /// Looks a declared parameter up by name.
    pub fn spec(&self, name: &str) -> Option<&ParamSpec> {
        self.0.iter().find(|s| s.name == name)
    }

    /// Declared parameter names, in declaration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.0.iter().map(|s| s.name).collect()
    }

    /// Coerces `value` to `spec`'s declared type.
    ///
    /// Coercions are deliberately narrow: an integer widens to f64, and
    /// `0`/`1` coerce to bool (existing scenarios spell switches like
    /// `gather = 0`). Everything else is a type error.
    ///
    /// # Errors
    ///
    /// Returns a message naming the parameter, the declared type, and the
    /// offending value.
    pub fn coerce(spec: &ParamSpec, value: &ParamValue) -> Result<ParamValue, String> {
        let ok = match (spec.ty, value) {
            (ParamType::U64, ParamValue::U64(_))
            | (ParamType::F64, ParamValue::F64(_))
            | (ParamType::Bool, ParamValue::Bool(_))
            | (ParamType::Str, ParamValue::Str(_)) => value.clone(),
            (ParamType::F64, ParamValue::U64(v)) => ParamValue::F64(*v as f64),
            (ParamType::Bool, ParamValue::U64(v @ (0 | 1))) => ParamValue::Bool(*v == 1),
            _ => {
                return Err(format!(
                    "parameter {:?} must be {} (got {})",
                    spec.name,
                    spec.ty.name(),
                    value
                ))
            }
        };
        if let (Some(choices), ParamValue::Str(s)) = (spec.choices, &ok) {
            if !choices.contains(&s.as_str()) {
                return Err(format!(
                    "parameter {:?} must be one of: {} (got {:?})",
                    spec.name,
                    choices.join(", "),
                    s
                ));
            }
        }
        Ok(ok)
    }

    /// Checks `overrides` against the schema: every name must be
    /// declared and every value must coerce to its declared type.
    ///
    /// # Errors
    ///
    /// Unknown names are reported with the nearest declared name (typo
    /// repair) and the full declared list; type mismatches with the
    /// declared type.
    pub fn check(&self, overrides: &Params) -> Result<(), String> {
        for (name, value) in overrides.iter() {
            let Some(spec) = self.spec(name) else {
                let mut msg = format!("no parameter {name:?}");
                if let Some(near) = nearest(name, &self.names()) {
                    msg.push_str(&format!(" (did you mean {near:?}?)"));
                }
                msg.push_str(&format!("; declared: {}", self.names().join(", ")));
                return Err(msg);
            };
            Self::coerce(spec, value)?;
        }
        Ok(())
    }

    /// Fully resolves a parameter set: schema defaults at the given scale
    /// and thread count, overridden by `overrides` (coerced to their
    /// declared types).
    ///
    /// # Errors
    ///
    /// Returns the first [`ParamSchema::check`] error.
    pub fn resolve(
        &self,
        scale: u64,
        threads: usize,
        overrides: &Params,
    ) -> Result<Params, String> {
        self.check(overrides)?;
        let mut out = Params::new();
        for spec in &self.0 {
            let value = match overrides.get(spec.name) {
                Some(v) => Self::coerce(spec, v)?,
                None => spec.default.resolve(scale, threads),
            };
            out.set(spec.name, value);
        }
        Ok(out)
    }
}

/// The declared name closest to `name` by edit distance, if any is close
/// enough to plausibly be a typo (distance ≤ half the name's length).
pub fn nearest<'a>(name: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let best = candidates
        .iter()
        .map(|c| (edit_distance(name, c), *c))
        .min_by_key(|&(d, _)| d)?;
    (best.0 <= name.len().max(3) / 2 + 1).then_some(best.1)
}

/// Classic Levenshtein distance (small strings; O(n·m) is fine).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale("total_ops", 8_000, "total operations")
            .flag("gather", true, "issue gather requests")
            .text("mix", "mixed", "operation mix")
            .f64("bias", 0.5, "selection bias")
            .u64_per_thread("warm_start", 48, "pre-populated elements")
    }

    #[test]
    fn defaults_resolve_with_scale_and_threads() {
        let p = schema().resolve(3, 4, &Params::new()).unwrap();
        assert_eq!(p.u64("total_ops"), 24_000);
        assert!(p.flag("gather"));
        assert_eq!(p.text("mix"), "mixed");
        assert_eq!(p.f64("bias"), 0.5);
        assert_eq!(p.u64("warm_start"), 192);
    }

    #[test]
    fn overrides_win_and_coerce() {
        let mut over = Params::new();
        over.set("gather", 0u64); // u64 0 coerces to bool false
        over.set("bias", 2u64); // u64 widens to f64
        over.set("mix", "audit-heavy");
        let p = schema().resolve(1, 1, &over).unwrap();
        assert!(!p.flag("gather"));
        assert_eq!(p.f64("bias"), 2.0);
        assert_eq!(p.text("mix"), "audit-heavy");
    }

    #[test]
    fn unknown_names_suggest_the_nearest_param() {
        let mut over = Params::new();
        over.set("total_op", 5u64);
        let err = schema().check(&over).unwrap_err();
        assert!(err.contains("no parameter \"total_op\""), "{err}");
        assert!(err.contains("did you mean \"total_ops\"?"), "{err}");
        assert!(err.contains("declared: total_ops"), "{err}");
        // A name nothing like any declared one gets the list, no guess.
        let mut over = Params::new();
        over.set("zzzzzzzzzzzz", 5u64);
        let err = schema().check(&over).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn type_errors_name_the_declared_type() {
        let mut over = Params::new();
        over.set("total_ops", "lots");
        let err = schema().check(&over).unwrap_err();
        assert!(err.contains("\"total_ops\" must be u64"), "{err}");
        let mut over = Params::new();
        over.set("gather", 2u64); // only 0/1 coerce to bool
        assert!(schema().check(&over).is_err());
        let mut over = Params::new();
        over.set("mix", 3u64);
        let err = schema().check(&over).unwrap_err();
        assert!(err.contains("must be string"), "{err}");
    }

    #[test]
    fn params_shadow_and_merge() {
        let mut base = Params::new();
        base.set("k", 100u64).set("n", 5u64);
        let mut over = Params::new();
        over.set("k", 7u64);
        let merged = base.overridden_by(&over);
        assert_eq!(merged.get_u64("k"), Some(7));
        assert_eq!(merged.get_u64("n"), Some(5));
        assert_eq!(merged.get("missing"), None);
    }

    #[test]
    fn edit_distance_is_sane() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("total_inc", "total_incs"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(
            nearest("total_inc", &["total_incs", "k"]),
            Some("total_incs")
        );
    }

    #[test]
    fn display_and_render_are_stable() {
        assert_eq!(ParamValue::U64(7).to_string(), "7");
        assert_eq!(ParamValue::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(ParamDefault::PerScale(100).render(), "100×scale");
        assert_eq!(ParamDefault::PerThread(2).render(), "2×threads");
    }
}
