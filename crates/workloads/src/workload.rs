//! The `Workload` trait — the project's workload-authoring surface.
//!
//! A workload is a named, self-describing benchmark: it declares a typed
//! parameter [`ParamSchema`] (so scenario layers can validate overrides
//! before anything runs), executes on a [`BaseCfg`] plus fully-resolved
//! [`Params`], and exposes its sequential **oracle** as a first-class
//! hook — the correctness check that makes a commutativity claim
//! mechanical rather than an ad-hoc assert buried in a run function
//! (Koskinen & Bansal argue commutativity should be checked per
//! operation; here every registered workload's oracle is visible to, and
//! runnable by, the registry and its conformance suite).
//!
//! Implementations live next to their benchmark logic (e.g.
//! [`crate::micro::counter::Counter`]); [`builtins`] enumerates the
//! shipped set. Registries (see `commtm-lab`'s `registry` module) hold
//! `Box<dyn Workload>` and can be extended with custom implementations.

use std::any::Any;

use commtm::{Machine, RunReport, Trace};

use crate::claims::Claim;
use crate::BaseCfg;
use crate::{ParamSchema, Params};

/// Micro vs. full application (the paper's Sec. VI vs. Sec. VII split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Sec. VI microbenchmark.
    Micro,
    /// Sec. VII application.
    App,
}

impl WorkloadKind {
    /// The spelling used in schema dumps.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Micro => "micro",
            WorkloadKind::App => "app",
        }
    }
}

/// A finished simulation: the machine (for oracle inspection) plus its
/// run report (for statistics).
pub struct RunOutcome {
    /// The simulated machine, post-run. Oracles read (and may mutate —
    /// e.g. draining a heap) its memory.
    pub machine: Machine,
    /// The statistics report the harness turns into figures.
    pub report: RunReport,
    /// Workload-private state the oracle needs from the setup phase
    /// (allocated addresses, warm-start checksums). `()` when unused.
    pub aux: Box<dyn Any + Send>,
}

/// A registered benchmark: identity, declarative parameter schema,
/// execution, and an explicit sequential oracle.
pub trait Workload: Send + Sync {
    /// Registry name (`counter`, `bank`, ...).
    fn name(&self) -> &'static str;

    /// Micro or app.
    fn kind(&self) -> WorkloadKind;

    /// One-line description (shown by `commtm-lab workloads`).
    fn summary(&self) -> &'static str;

    /// The declared parameter surface: every parameter `run` reads, with
    /// type, default, and doc. Scenario validation checks overrides
    /// against this before any cell runs.
    fn schema(&self) -> ParamSchema;

    /// Runs the simulation with fully-resolved typed parameters (see
    /// [`ParamSchema::resolve`]) and returns the machine + report
    /// *without* checking the oracle.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure (e.g. a cycle-limit overrun); the
    /// sweep executor catches panics per cell.
    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome;

    /// Checks the workload's sequential oracle against the finished
    /// machine — the semantic-commutativity contract (conservation,
    /// ordering, set equality) plus coherence invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated property.
    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome);

    /// Runs and oracle-checks in one step, returning the report — the
    /// path sweeps take.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure or an oracle violation.
    fn run_checked(&self, base: BaseCfg, params: &Params) -> RunReport {
        let mut out = self.run(base, params);
        self.oracle(&base, params, &mut out);
        out.report
    }

    /// The commutativity claims this workload stakes: pairs of labeled
    /// operations it believes commute, with randomized inputs and a
    /// logical-state probe (see [`crate::claims`]). `commtm-lab verify`
    /// runs both interleavings of every claim and demands probe equality.
    /// Every shipped workload declares at least one claim; the default is
    /// empty so external implementations opt in incrementally.
    fn commutativity_claims(&self) -> Vec<Claim> {
        Vec::new()
    }

    /// Like [`Workload::run_checked`], but also hands back the machine's
    /// event trace (populated only when the run's tuning enabled tracing;
    /// `None` otherwise).
    ///
    /// # Panics
    ///
    /// Panics on simulation failure or an oracle violation.
    fn run_traced(&self, base: BaseCfg, params: &Params) -> (RunReport, Option<Trace>) {
        let mut out = self.run(base, params);
        self.oracle(&base, params, &mut out);
        (out.report, out.machine.take_trace())
    }
}

/// The shipped workloads: the paper's five microbenchmarks and five
/// applications, plus the `bank` transfer/audit microbenchmark.
pub fn builtins() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::micro::counter::Counter),
        Box::new(crate::micro::refcount::Refcount),
        Box::new(crate::micro::list::List),
        Box::new(crate::micro::oput::Oput),
        Box::new(crate::micro::topk::TopK),
        Box::new(crate::micro::bank::Bank),
        Box::new(crate::apps::boruvka::Boruvka),
        Box::new(crate::apps::kmeans::Kmeans),
        Box::new(crate::apps::ssca2::Ssca2),
        Box::new(crate::apps::genome::Genome),
        Box::new(crate::apps::vacation::Vacation),
    ]
}
