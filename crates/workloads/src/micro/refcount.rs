//! Reference counting with bounded non-negative counters (paper Secs. IV
//! and VI, Fig. 10): threads acquire and release references to 16 objects.
//! `decrement` only commutes while the counter is positive, so CommTM
//! without gather requests reduces whenever a thread's local partial value
//! hits zero; gather requests redistribute value between the U-state copies
//! and restore scalability.

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Which system variant to run (the three Fig. 10 series).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Conventional HTM (labels demoted).
    Baseline,
    /// CommTM, but `decrement` falls straight back to a plain load
    /// (reduction) when the local value is zero.
    NoGather,
    /// CommTM with `load_gather` rebalancing (the paper's full design).
    Gather,
}

impl Variant {
    fn scheme(self) -> Scheme {
        match self {
            Variant::Baseline => Scheme::Baseline,
            Variant::NoGather | Variant::Gather => Scheme::CommTm,
        }
    }
}

/// Configuration for the reference-counting microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads and seed (the scheme is set by `variant`).
    pub base: BaseCfg,
    /// System variant.
    pub variant: Variant,
    /// Total acquire/release operations (the paper uses 1M).
    pub total_ops: u64,
    /// Number of reference-counted objects (the paper uses 16).
    pub objects: usize,
    /// Initial references held per thread per object (the paper uses 3).
    pub initial_refs: u64,
    /// Maximum references a thread holds per object (the paper uses 10).
    pub max_refs: u64,
}

impl Cfg {
    /// The paper's parameters at a given op count.
    pub fn new(base: BaseCfg, variant: Variant, total_ops: u64) -> Self {
        Cfg {
            base,
            variant,
            total_ops,
            objects: 16,
            initial_refs: 3,
            max_refs: 10,
        }
    }
}

/// Per-thread state: references currently held per object, plus a count of
/// decrements that observed a globally-zero counter (conservation makes
/// these impossible; the oracle asserts none happened).
#[derive(Clone)]
struct Held {
    refs: Vec<u64>,
    failed_decrements: u64,
}

/// Runs the benchmark; verifies reference conservation.
///
/// # Panics
///
/// Panics if any counter's final value differs from the references held
/// against it, or if a decrement ever observed a zero global count (which
/// conservation makes impossible).
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    counters: Vec<Addr>,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let scheme = cfg.variant.scheme();
    let mut b = cfg.base.builder_for(scheme);
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    // One counter per object, each on its own line.
    let counters: Vec<Addr> = (0..cfg.objects)
        .map(|_| m.heap_mut().alloc_lines(1))
        .collect();
    for &c in &counters {
        m.poke(c, cfg.initial_refs * cfg.base.threads as u64);
    }

    let use_gather = cfg.variant == Variant::Gather;

    // Registers: I = iteration, OBJ = chosen object, DO_INC = op kind.
    const I: usize = 0;
    const OBJ: usize = 1;
    const DO_INC: usize = 2;

    for t in 0..cfg.base.threads {
        let iters = cfg.base.share(cfg.total_ops, t);
        let counters = counters.clone();
        let objects = cfg.objects as u64;
        let max_refs = cfg.max_refs;
        let mut p = Program::builder();
        if iters > 0 {
            let top = p.here();
            // Pick an object and an operation: p(increment) falls linearly
            // with the references held (1.0 at 0 refs, 0.0 at max).
            p.ctl(move |c| {
                let obj = c.rand_below(objects);
                c.regs[OBJ] = obj;
                let held = c.user::<Held>().refs[obj as usize];
                let p_inc_num = max_refs.saturating_sub(held);
                let draw = c.rand_below(max_refs);
                c.regs[DO_INC] = u64::from(draw < p_inc_num);
                Ctl::Next
            });
            let counters_tx = counters.clone();
            p.tx(move |c| {
                let obj = c.reg(OBJ) as usize;
                let addr = counters_tx[obj];
                if c.reg(DO_INC) == 1 {
                    // Acquire: increments always commute.
                    let v = c.load_l(add, addr);
                    c.store_l(add, addr, v + 1);
                    c.defer(move |h: &mut Held| h.refs[obj] += 1);
                } else {
                    // Release: the paper's bounded decrement (Sec. IV).
                    let mut v = c.load_l(add, addr);
                    if v == 0 && use_gather {
                        v = c.load_gather(add, addr);
                    }
                    if v == 0 {
                        v = c.load(addr); // triggers a reduction
                    }
                    if v > 0 {
                        c.store_l(add, addr, v - 1);
                        c.defer(move |h: &mut Held| h.refs[obj] -= 1);
                    } else {
                        // Impossible under conservation; counted and
                        // asserted zero by the oracle.
                        c.defer(move |h: &mut Held| h.failed_decrements += 1);
                    }
                }
            });
            p.ctl(move |c| {
                c.regs[I] += 1;
                if c.regs[I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(
            t,
            p.build(),
            Held {
                refs: vec![cfg.initial_refs; cfg.objects],
                failed_decrements: 0,
            },
        );
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux { counters }),
    }
}

/// The conservation oracle: each counter equals the sum of references
/// held, and no decrement ever saw a zero global count.
///
/// # Panics
///
/// Panics on a conservation violation.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let counters = out
        .aux
        .downcast_ref::<Aux>()
        .expect("refcount aux")
        .counters
        .clone();
    let m = &mut out.machine;
    for (o, &c) in counters.iter().enumerate() {
        let held: u64 = (0..cfg.base.threads)
            .map(|t| m.env(t).user::<Held>().refs[o])
            .sum();
        let v = m.read_word(c);
        assert_eq!(v, held, "object {o}: counter must equal held references");
    }
    let failed: u64 = (0..cfg.base.threads)
        .map(|t| m.env(t).user::<Held>().failed_decrements)
        .sum();
    assert_eq!(
        failed, 0,
        "conservation: a held reference implies a positive count"
    );
    m.check_invariants().expect("coherence invariants");
}

/// The registered Fig. 10 reference-counting workload. The `gather`
/// flag selects between the paper's full design and the no-gather
/// variant; under the baseline scheme it is ignored.
pub struct Refcount;

impl Refcount {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let variant = match base.scheme {
            Scheme::Baseline => Variant::Baseline,
            Scheme::CommTm if p.flag("gather") => Variant::Gather,
            Scheme::CommTm => Variant::NoGather,
        };
        let mut cfg = Cfg::new(base, variant, p.u64("total_ops"));
        cfg.objects = p.u64("objects") as usize;
        cfg.initial_refs = p.u64("initial_refs");
        cfg.max_refs = p.u64("max_refs");
        cfg
    }
}

impl Workload for Refcount {
    fn name(&self) -> &'static str {
        "refcount"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "bounded non-negative reference counters (Fig. 10)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let ctr = Addr::new(0x1000);
        vec![Claim::new(
            "refcount/acquire-commutes-with-bounded-release",
            "a labeled increment and the paper's bounded decrement (gather, then \
             plain-read fallback) commute while the count stays positive",
        )
        .label(labels::add())
        .input("init", 1..=64)
        .input("inc", 1..=16)
        .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| ctx.poke(ctr, inp.get("init")))
        .op_a(move |ctx: &mut ClaimCtx, inp: &Inputs| {
            let d = inp.get("inc");
            ctx.txn(0, |t| {
                let v = t.load_l(add, ctr);
                t.store_l(add, ctr, v + d);
            });
        })
        .op_b(move |ctx: &mut ClaimCtx, _inp: &Inputs| {
            ctx.txn(1, |t| {
                // Sec. IV bounded decrement: local partial, then gather,
                // then a reducing plain read.
                let mut v = t.load_l(add, ctr);
                if v == 0 {
                    v = t.gather(add, ctr);
                }
                if v == 0 {
                    v = t.load(ctr);
                }
                if v > 0 {
                    t.store_l(add, ctr, v - 1);
                }
            });
        })
        .probe(move |ctx: &mut ClaimCtx| vec![ctx.logical_w0(ctr), ctx.read(0, ctr)])]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale(
                "total_ops",
                8_000,
                "total acquire/release operations (the paper uses 1M)",
            )
            .flag(
                "gather",
                true,
                "issue gather requests on empty local counters (CommTM only)",
            )
            .u64("objects", 16, "reference-counted objects")
            .u64(
                "initial_refs",
                3,
                "initial references held per thread per object",
            )
            .u64(
                "max_refs",
                10,
                "maximum references a thread holds per object",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_conserve_references() {
        for variant in [Variant::Baseline, Variant::NoGather, Variant::Gather] {
            let base = BaseCfg::new(4, variant.scheme());
            run(&Cfg::new(base, variant, 400));
        }
    }

    #[test]
    fn gather_requests_are_issued() {
        let base = BaseCfg::new(8, Scheme::CommTm);
        let r = run(&Cfg {
            objects: 2,
            ..Cfg::new(base, Variant::Gather, 800)
        });
        assert!(
            r.core_totals().gather_ops > 0,
            "low counters should trigger gathers"
        );
    }

    #[test]
    fn single_thread_each_variant() {
        for variant in [Variant::Baseline, Variant::NoGather, Variant::Gather] {
            let base = BaseCfg::new(1, variant.scheme());
            run(&Cfg::new(base, variant, 100));
        }
    }
}
