//! Ordered puts / priority updates (paper Sec. VI, Fig. 13): each
//! transaction replaces a shared (key, value) pair if its new key is lower.
//! The OPUT label lets lower-key puts buffer locally; the baseline mostly
//! scales too because only smaller keys cause conflicting writes, which is
//! exactly the paper's observation (31x vs near-linear).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for the ordered-put microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total puts across all threads (the paper uses 10M).
    pub total_puts: u64,
}

impl Cfg {
    /// Creates a configuration.
    pub fn new(base: BaseCfg, total_puts: u64) -> Self {
        Cfg { base, total_puts }
    }
}

/// Per-thread record of the minimum pair this thread attempted.
#[derive(Clone, Default)]
struct Tally {
    min_key: u64,
    min_val: u64,
}

/// Runs the benchmark; verifies the surviving pair is the global minimum.
///
/// # Panics
///
/// Panics if the final pair is not the minimum-key pair over every
/// committed put.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    key_addr: Addr,
    val_addr: Addr,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let oput = b.register_label(labels::oput()).expect("label budget");
    let mut m = b.build();
    let pair = m.heap_mut().alloc_lines(1);
    let key_addr = pair;
    let val_addr = pair.offset_words(1);
    // Initialize to the identity (key = MAX) so the first put always wins.
    m.poke(key_addr, u64::MAX);

    for t in 0..cfg.base.threads {
        let iters = cfg.base.share(cfg.total_puts, t);
        const I: usize = 0;
        let mut p = Program::builder();
        if iters > 0 {
            let top = p.here();
            p.tx(move |c| {
                // Keys leave headroom below u64::MAX (the identity).
                let k = c.rand() >> 8;
                let v = c.rand();
                let cur = c.load_l(oput, key_addr);
                if k < cur {
                    c.store_l(oput, key_addr, k);
                    c.store_l(oput, val_addr, v);
                }
                c.defer(move |t: &mut Tally| {
                    if k < t.min_key {
                        t.min_key = k;
                        t.min_val = v;
                    }
                });
            });
            p.ctl(move |c| {
                c.regs[I] += 1;
                if c.regs[I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(
            t,
            p.build(),
            Tally {
                min_key: u64::MAX,
                min_val: 0,
            },
        );
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux { key_addr, val_addr }),
    }
}

/// The oracle: the surviving pair is the global minimum over every
/// thread's committed draws.
///
/// # Panics
///
/// Panics if a higher-key put survived.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let &Aux { key_addr, val_addr } = out.aux.downcast_ref::<Aux>().expect("oput aux");
    let m = &mut out.machine;
    let mut best = (u64::MAX, 0u64);
    for t in 0..cfg.base.threads {
        let tally = m.env(t).user::<Tally>();
        if tally.min_key < best.0 {
            best = (tally.min_key, tally.min_val);
        }
    }
    let (k, v) = (m.read_word(key_addr), m.read_word(val_addr));
    assert_eq!((k, v), best, "surviving pair must be the global minimum");
    m.check_invariants().expect("coherence invariants");
}

/// The registered Fig. 13 ordered-put workload.
pub struct Oput;

impl Oput {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        Cfg::new(base, p.u64("total_puts"))
    }
}

impl Workload for Oput {
    fn name(&self) -> &'static str {
        "oput"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "ordered puts / priority updates (Fig. 13)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let oput_l = LabelId::new(0);
        let key_addr = Addr::new(0x1000);
        let val_addr = key_addr.offset_words(1);
        let put = move |core: usize, kname: &'static str, vname: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let (k, v) = (inp.get(kname), inp.get(vname));
                ctx.txn(core, |t| {
                    let cur = t.load_l(oput_l, key_addr);
                    if k < cur {
                        t.store_l(oput_l, key_addr, k);
                        t.store_l(oput_l, val_addr, v);
                    }
                });
            }
        };
        vec![Claim::new(
            "oput/distinct-key-puts-commute",
            "two ordered puts with distinct keys keep the lower-key pair in \
             either order (ties are excluded: OPUT's tie-break is first-wins)",
        )
        .label(labels::oput())
        // Disjoint key ranges: shrinking stays within them, so no ties.
        .input("ka", 0..=999)
        .input("kb", 1_000..=1_999)
        .input("va", 1..=1_000_000)
        .input("vb", 1..=1_000_000)
        .setup(move |ctx: &mut ClaimCtx, _inp: &Inputs| ctx.poke(key_addr, u64::MAX))
        .op_a(put(0, "ka", "va"))
        .op_b(put(1, "kb", "vb"))
        .probe(move |ctx: &mut ClaimCtx| vec![ctx.read(0, key_addr), ctx.read(0, val_addr)])]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new().u64_per_scale(
            "total_puts",
            20_000,
            "total puts across all threads (the paper uses 10M)",
        )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn both_schemes_keep_global_minimum() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            run(&Cfg::new(BaseCfg::new(4, scheme), 200));
        }
    }

    #[test]
    fn commtm_reduces_aborts() {
        let base = run(&Cfg::new(BaseCfg::new(8, Scheme::Baseline), 400));
        let comm = run(&Cfg::new(BaseCfg::new(8, Scheme::CommTm), 400));
        assert!(comm.aborts() <= base.aborts());
    }
}
