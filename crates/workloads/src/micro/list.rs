//! Concurrent linked-list enqueues and dequeues (paper Sec. VI, Figs. 11
//! and 12). When element order is unimportant (sets, work-sharing queues),
//! enqueue/dequeue are semantically — but not strictly — commutative: under
//! CommTM each thread appends to a *local* partial list behind its U-state
//! descriptor copy; reductions concatenate the partial lists and splitters
//! donate head elements to empty dequeuers.
//!
//! Layout follows the paper: under CommTM the descriptor (head, tail) is
//! one line; under the baseline, head and tail live on different lines to
//! avoid false sharing (Sec. VI).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Operation mix (the two Fig. 12 panels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// 100% enqueues (Fig. 12a).
    EnqueueOnly,
    /// 50% enqueues / 50% dequeues, randomly interleaved (Fig. 12b).
    Mixed,
}

/// Configuration for the linked-list microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total operations (the paper uses 10M).
    pub total_ops: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Elements pre-populated into the list before the run. The paper's
    /// 10M-op mixed run keeps the list thousands of elements deep; scaled
    /// runs use a warm start so dequeues aren't dominated by empty-list
    /// gathers (a scale artifact, not a scheme property).
    pub warm_start: u64,
}

impl Cfg {
    /// Creates a configuration.
    pub fn new(base: BaseCfg, total_ops: u64, mix: Mix) -> Self {
        Cfg {
            base,
            total_ops,
            mix,
            warm_start: 0,
        }
    }

    /// Sets the warm-start population.
    pub fn with_warm_start(mut self, warm_start: u64) -> Self {
        self.warm_start = warm_start;
        self
    }
}

/// Per-thread tallies for the conservation oracle.
#[derive(Clone, Default)]
struct Tally {
    enq_count: u64,
    enq_sum: u64,
    deq_count: u64,
    deq_sum: u64,
    deq_empty: u64,
}

const NODE_BYTES: u64 = 64; // one line per node: next at +0, value at +8

/// Runs the benchmark; verifies element conservation by walking the final
/// list.
///
/// # Panics
///
/// Panics if the surviving elements don't equal enqueues minus successful
/// dequeues (in count and value sum).
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    head_addr: Addr,
    warm_sum: u64,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let list = b.register_label(labels::list()).expect("label budget");
    let mut m = b.build();

    // Descriptor layout depends on the scheme (see module docs).
    let (head_addr, tail_addr) = match cfg.base.scheme {
        Scheme::CommTm => {
            let d = m.heap_mut().alloc_lines(1);
            (d, d.offset_words(1))
        }
        Scheme::Baseline => (m.heap_mut().alloc_lines(1), m.heap_mut().alloc_lines(1)),
    };

    // Warm-start population: a pre-built chain behind the descriptor.
    let mut warm_sum = 0u64;
    if cfg.warm_start > 0 {
        let pool = m.heap_mut().alloc(cfg.warm_start * NODE_BYTES, 64);
        let mut prev = 0u64;
        for i in 0..cfg.warm_start {
            let node = pool.raw() + i * NODE_BYTES;
            let value = (0x57_41_52_4Du64 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            warm_sum = warm_sum.wrapping_add(value);
            m.poke(Addr::new(node), 0);
            m.poke(Addr::new(node + 8), value);
            if prev != 0 {
                m.poke(Addr::new(prev), node);
            } else {
                m.poke(head_addr, node);
            }
            prev = node;
        }
        m.poke(tail_addr, prev);
    }

    // Per-thread node pools; a register-held cursor allocates (registers
    // roll back with the transaction, so aborted enqueues don't leak).
    const I: usize = 0;
    const CUR: usize = 1;
    const DO_ENQ: usize = 2;
    let mixed = cfg.mix == Mix::Mixed;

    for t in 0..cfg.base.threads {
        let iters = cfg.base.share(cfg.total_ops, t);
        let pool = m.heap_mut().alloc(iters.max(1) * NODE_BYTES, 64);
        let mut p = Program::builder();
        if iters > 0 {
            let pool_base = pool.raw();
            p.ctl(move |c| {
                c.regs[CUR] = pool_base;
                Ctl::Next
            });
            let top = p.here();
            p.ctl(move |c| {
                c.regs[DO_ENQ] = if mixed { c.rand_below(2) } else { 1 };
                Ctl::Next
            });
            p.tx(move |c| {
                if c.reg(DO_ENQ) == 1 {
                    // Enqueue: append a fresh node to the local partial
                    // list.
                    let node = c.reg(CUR);
                    c.set_reg(CUR, node + NODE_BYTES);
                    let value = c.rand() | 1; // non-zero sentinel-safe value
                    c.store(Addr::new(node), 0); // node.next
                    c.store(Addr::new(node + 8), value);
                    let tail = c.load_l(list, tail_addr);
                    if tail == 0 {
                        c.store_l(list, head_addr, node);
                        c.store_l(list, tail_addr, node);
                    } else {
                        c.store(Addr::new(tail), node); // tail.next = node
                        c.store_l(list, tail_addr, node);
                    }
                    c.defer(move |s: &mut Tally| {
                        s.enq_count += 1;
                        s.enq_sum = s.enq_sum.wrapping_add(value);
                    });
                } else {
                    // Dequeue: take the local head; gather from other
                    // partial lists when empty; a plain read (reduction)
                    // settles true emptiness.
                    let mut head = c.load_l(list, head_addr);
                    if head == 0 {
                        head = c.load_gather(list, head_addr);
                    }
                    if head == 0 {
                        head = c.load(head_addr);
                    }
                    if head == 0 {
                        c.defer(|s: &mut Tally| s.deq_empty += 1);
                    } else {
                        let next = c.load(Addr::new(head));
                        c.store_l(list, head_addr, next);
                        if next == 0 {
                            c.store_l(list, tail_addr, 0);
                        }
                        let value = c.load(Addr::new(head + 8));
                        c.defer(move |s: &mut Tally| {
                            s.deq_count += 1;
                            s.deq_sum = s.deq_sum.wrapping_add(value);
                        });
                    }
                }
            });
            p.ctl(move |c| {
                c.regs[I] += 1;
                if c.regs[I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), Tally::default());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux {
            head_addr,
            warm_sum,
        }),
    }
}

/// The conservation oracle: walking the merged list must account for
/// every enqueue minus every successful dequeue, in count and value sum.
///
/// # Panics
///
/// Panics on lost or duplicated elements (or a cyclic list).
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let &Aux {
        head_addr,
        warm_sum,
    } = out.aux.downcast_ref::<Aux>().expect("list aux");
    let m = &mut out.machine;

    // Walk the merged list (the plain read of the head reduces all partial
    // lists first).
    let mut remaining_count = 0u64;
    let mut remaining_sum = 0u64;
    let mut node = m.read_word(head_addr);
    while node != 0 {
        remaining_count += 1;
        remaining_sum = remaining_sum.wrapping_add(m.read_word(Addr::new(node + 8)));
        node = m.read_word(Addr::new(node));
        assert!(
            remaining_count <= cfg.total_ops + cfg.warm_start,
            "list must be acyclic"
        );
    }

    let mut enq = 0u64;
    let mut deq = 0u64;
    let mut enq_sum = 0u64;
    let mut deq_sum = 0u64;
    for t in 0..cfg.base.threads {
        let s = m.env(t).user::<Tally>();
        enq += s.enq_count;
        deq += s.deq_count;
        enq_sum = enq_sum.wrapping_add(s.enq_sum);
        deq_sum = deq_sum.wrapping_add(s.deq_sum);
    }
    assert_eq!(
        remaining_count,
        cfg.warm_start + enq - deq,
        "length conservation"
    );
    assert_eq!(
        remaining_sum,
        warm_sum.wrapping_add(enq_sum).wrapping_sub(deq_sum),
        "value conservation: every enqueued element is dequeued or present exactly once"
    );
    m.check_invariants().expect("coherence invariants");
}

/// The registered Fig. 12 linked-list workload. `mixed` selects the
/// 50/50 enqueue/dequeue mix vs. enqueue-only; `warm_start` only applies
/// to the mixed variant (enqueue-only starts empty, as in the paper).
pub struct List;

impl List {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mixed = p.flag("mixed");
        let mix = if mixed { Mix::Mixed } else { Mix::EnqueueOnly };
        let warm = if mixed { p.u64("warm_start") } else { 0 };
        Cfg::new(base, p.u64("total_ops"), mix).with_warm_start(warm)
    }
}

impl Workload for List {
    fn name(&self) -> &'static str {
        "list"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "linked-list enqueues/dequeues (Fig. 12)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let list_l = LabelId::new(0);
        let head_addr = Addr::new(0x1000);
        let tail_addr = head_addr.offset_words(1);
        let enqueue = move |core: usize, node: u64, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let value = inp.get(key);
                ctx.txn(core, |t| {
                    t.store(Addr::new(node), 0); // node.next
                    t.store(Addr::new(node + 8), value);
                    let tail = t.load_l(list_l, tail_addr);
                    if tail == 0 {
                        t.store_l(list_l, head_addr, node);
                        t.store_l(list_l, tail_addr, node);
                    } else {
                        t.store(Addr::new(tail), node); // tail.next = node
                        t.store_l(list_l, tail_addr, node);
                    }
                });
            }
        };
        vec![Claim::new(
            "list/enqueues-commute",
            "two transactional enqueues onto one shared list build the same \
             multiset of values and a well-formed chain, in either order",
        )
        .label(labels::list())
        .input("va", 1..=1_000_000)
        .input("vb", 1..=1_000_000)
        .op_a(enqueue(0, 0x2000, "va"))
        .op_b(enqueue(1, 0x2040, "vb"))
        .probe(move |ctx: &mut ClaimCtx| {
            // A plain read reduces the descriptor (concatenating the
            // partial lists); walk the merged chain.
            let mut head = ctx.read(0, head_addr);
            let tail = ctx.read(0, tail_addr);
            let mut values = Vec::new();
            let mut last = 0;
            let mut steps = 0u64;
            while head != 0 && steps < 16 {
                values.push(ctx.read(0, Addr::new(head + 8)));
                last = head;
                head = ctx.read(0, Addr::new(head));
                steps += 1;
            }
            values.sort_unstable();
            let mut probe = vec![steps, u64::from(tail == last)];
            probe.extend(values);
            probe
        })]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale("total_ops", 8_000, "total operations (the paper uses 10M)")
            .flag(
                "mixed",
                true,
                "50/50 enqueue/dequeue mix (false = enqueue-only)",
            )
            .u64_per_thread(
                "warm_start",
                48,
                "elements pre-populated before the run (mixed variant only)",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn enqueue_only_conserves_elements() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            let r = run(&Cfg::new(BaseCfg::new(4, scheme), 200, Mix::EnqueueOnly));
            assert!(r.commits() >= 200);
        }
    }

    #[test]
    fn mixed_ops_conserve_elements() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            run(&Cfg::new(BaseCfg::new(4, scheme), 300, Mix::Mixed));
        }
    }

    #[test]
    fn commtm_beats_baseline_on_enqueues() {
        let base = run(&Cfg::new(
            BaseCfg::new(8, Scheme::Baseline),
            400,
            Mix::EnqueueOnly,
        ));
        let comm = run(&Cfg::new(
            BaseCfg::new(8, Scheme::CommTm),
            400,
            Mix::EnqueueOnly,
        ));
        assert!(
            comm.total_cycles < base.total_cycles,
            "CommTM should win on concurrent enqueues ({} vs {})",
            comm.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn single_thread_mixed() {
        run(&Cfg::new(BaseCfg::new(1, Scheme::CommTm), 100, Mix::Mixed));
    }
}
