//! Top-K set insertions (paper Sec. VI, Figs. 14 and 15): a top-K set
//! retains the K highest inserted elements. The descriptor line holds a
//! pointer to a heap; under CommTM each thread builds a *local* heap behind
//! its U-state descriptor copy and reductions merge them (Fig. 15), while
//! the baseline funnels every insert through one shared heap and
//! serializes.

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::ds::{simheap, topk_label, TxWords, Words};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for the top-K microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total insertions (the paper uses 10M).
    pub total_inserts: u64,
    /// K (the paper uses a top-1000 set).
    pub k: u64,
}

impl Cfg {
    /// Creates a configuration.
    pub fn new(base: BaseCfg, total_inserts: u64, k: u64) -> Self {
        Cfg {
            base,
            total_inserts,
            k,
        }
    }
}

/// Runs the benchmark; verifies the retained set equals the K largest
/// committed insertions.
///
/// # Panics
///
/// Panics if the final heap differs from the sequential top-K oracle.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    desc: Addr,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let topk = b.register_label(topk_label()).expect("label budget");
    let mut m = b.build();
    let desc = m.heap_mut().alloc_lines(1);

    // One heap per thread (CommTM uses them as the local partial heaps; the
    // baseline only ever installs thread 0's... whichever first commits the
    // descriptor initialization).
    let heap_words = 2 + cfg.k;
    let heaps: Vec<Addr> = (0..cfg.base.threads)
        .map(|_| m.heap_mut().alloc(heap_words * 8, 64))
        .collect();
    for &h in &heaps {
        m.poke(h.offset_words(1), cfg.k); // capacity; len starts 0
    }

    for (t, &my_heap) in heaps.iter().enumerate() {
        let iters = cfg.base.share(cfg.total_inserts, t);
        const I: usize = 0;
        let mut p = Program::builder();
        if iters > 0 {
            let top = p.here();
            p.tx(move |c| {
                let x = c.rand();
                let mut hp = c.load_l(topk, desc);
                if hp == 0 {
                    // Install this thread's local heap behind the (partial)
                    // descriptor.
                    hp = my_heap.raw();
                    c.store_l(topk, desc, hp);
                }
                simheap::insert(&mut TxWords(c), Addr::new(hp), x);
                c.defer(move |seen: &mut Vec<u64>| seen.push(x));
            });
            p.ctl(move |c| {
                c.regs[I] += 1;
                if c.regs[I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), Vec::<u64>::new());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux { desc }),
    }
}

/// The oracle: the retained set equals the K largest committed
/// insertions. Drains the merged heap, so it can only run once.
///
/// # Panics
///
/// Panics if the final heap differs from the sequential top-K oracle.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let desc = out.aux.downcast_ref::<Aux>().expect("topk aux").desc;
    let m = &mut out.machine;

    // A plain read of the descriptor reduces all local heaps into one.
    let final_heap = Addr::new(m.read_word(desc));
    assert!(
        !final_heap.is_null(),
        "descriptor must point at the merged heap"
    );
    let mut host = HostWords(&mut *m);
    let mut got = simheap::drain_values(&mut host, final_heap);
    got.sort_unstable();

    // Oracle: the K largest over every committed insertion.
    let mut all: Vec<u64> = Vec::new();
    for t in 0..cfg.base.threads {
        all.extend(m.env(t).user::<Vec<u64>>());
    }
    assert_eq!(all.len() as u64, cfg.total_inserts);
    all.sort_unstable();
    let want: Vec<u64> = all
        .iter()
        .rev()
        .take(cfg.k.min(cfg.total_inserts) as usize)
        .rev()
        .copied()
        .collect();
    assert_eq!(got, want, "retained set must be the K largest insertions");
    m.check_invariants().expect("coherence invariants");
}

/// The registered Fig. 14 top-K workload.
pub struct TopK;

impl TopK {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        Cfg::new(base, p.u64("total_inserts"), p.u64("k"))
    }
}

impl Workload for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "top-K set insertions (Fig. 14)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        const K: u64 = 4;
        let topk = LabelId::new(0);
        let desc = Addr::new(0x1000);
        let insert = move |core: usize, my_heap: Addr, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let x = inp.get(key);
                ctx.txn(core, |t| {
                    let mut hp = t.load_l(topk, desc);
                    if hp == 0 {
                        // Install this core's local heap behind the
                        // (partial) descriptor.
                        hp = my_heap.raw();
                        t.store_l(topk, desc, hp);
                    }
                    simheap::insert(t, Addr::new(hp), x);
                });
            }
        };
        vec![Claim::new(
            "topk/inserts-commute",
            "two top-K insertions into per-core partial heaps retain the same \
             value set after the reduction merges them, in either order",
        )
        .label(topk_label())
        .input("xa", 1..=1_000_000)
        .input("xb", 1..=1_000_000)
        .setup(move |ctx: &mut ClaimCtx, _inp: &Inputs| {
            // Two empty heaps of capacity K (len word stays zero).
            ctx.poke(Addr::new(0x2000).offset_words(1), K);
            ctx.poke(Addr::new(0x3000).offset_words(1), K);
        })
        .op_a(insert(0, Addr::new(0x2000), "xa"))
        .op_b(insert(1, Addr::new(0x3000), "xb"))
        .probe(move |ctx: &mut ClaimCtx| {
            // A plain read of the descriptor reduces: the partial heaps
            // merge into whichever survives.
            let hp = ctx.read(0, desc);
            if hp == 0 {
                return vec![0];
            }
            let len = ctx.read(0, Addr::new(hp));
            let mut vals: Vec<u64> = (0..len.min(K))
                .map(|i| ctx.read(0, Addr::new(hp).offset_words(2 + i)))
                .collect();
            vals.sort_unstable();
            let mut probe = vec![len];
            probe.extend(vals);
            probe
        })]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale(
                "total_inserts",
                8_000,
                "total insertions (the paper uses 10M)",
            )
            .u64(
                "k",
                100,
                "retained-set size (the paper uses a top-1000 set)",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

/// Host-side `Words` over coherent machine reads (post-run verification).
struct HostWords<'a>(&'a mut Machine);

impl Words for HostWords<'_> {
    fn get(&mut self, addr: Addr) -> u64 {
        self.0.read_word(addr)
    }
    fn put(&mut self, addr: Addr, value: u64) {
        self.0.write_word(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn both_schemes_retain_top_k() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            run(&Cfg::new(BaseCfg::new(4, scheme), 300, 16));
        }
    }

    #[test]
    fn k_larger_than_inserts() {
        run(&Cfg::new(BaseCfg::new(2, Scheme::CommTm), 20, 64));
    }

    #[test]
    fn commtm_scales_better_than_baseline() {
        let base = run(&Cfg::new(BaseCfg::new(8, Scheme::Baseline), 400, 16));
        let comm = run(&Cfg::new(BaseCfg::new(8, Scheme::CommTm), 400, 16));
        assert!(
            comm.total_cycles < base.total_cycles,
            "CommTM should win on contended top-K inserts ({} vs {})",
            comm.total_cycles,
            base.total_cycles
        );
    }
}
