//! Bank transfers with consistent audits — the registry-extensibility
//! workload (not a paper figure; it exercises the same Sec. IV machinery
//! as `refcount` under an OLTP-shaped mix).
//!
//! Threads move money between accounts in short transactions: the debit
//! is the paper's *bounded* decrement (it only commutes while the
//! balance covers the amount, falling back to gather and then a plain
//! reducing read), the credit an unconditional ADD. Audit transactions
//! read every balance with plain loads — each one forces the directory
//! to reduce all outstanding U-state partial values — and must observe
//! the conserved grand total, which makes audits a direct mechanical
//! check of ADD-commutativity under both schemes.
//!
//! The operation mix is a **string-valued** parameter (`mix`): named
//! mixes rather than numeric knobs, which is what forced typed workload
//! parameters through the stack.

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::ds::emit_barrier;
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// The named operation mixes `bank` accepts for its `mix` parameter.
pub const MIXES: &[&str] = &["transfer-heavy", "mixed", "audit-heavy"];

/// Operation mix: how often an operation is an audit instead of a
/// transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// 1% audits: transfers dominate, audits are rare consistency probes.
    TransferHeavy,
    /// 20% audits: the balanced default.
    Mixed,
    /// 50% audits: reduction-heavy, the stress case for U-state churn.
    AuditHeavy,
}

impl Mix {
    /// Every mix, in [`MIXES`] order (a conformance test pins the two
    /// lists together, so the schema's choices and the parser cannot
    /// drift apart).
    pub const ALL: [Mix; 3] = [Mix::TransferHeavy, Mix::Mixed, Mix::AuditHeavy];

    /// The mix's `mix`-parameter spelling.
    pub fn name(self) -> &'static str {
        match self {
            Mix::TransferHeavy => "transfer-heavy",
            Mix::Mixed => "mixed",
            Mix::AuditHeavy => "audit-heavy",
        }
    }

    /// Parses a mix name (the `mix` parameter's accepted values).
    ///
    /// # Errors
    ///
    /// Returns the accepted-name list for anything else.
    pub fn parse(name: &str) -> Result<Mix, String> {
        Mix::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown bank mix {name:?} (expected one of: {})",
                    MIXES.join(", ")
                )
            })
    }

    /// Percent of operations that are audits.
    pub fn audit_pct(self) -> u64 {
        match self {
            Mix::TransferHeavy => 1,
            Mix::Mixed => 20,
            Mix::AuditHeavy => 50,
        }
    }
}

/// Configuration for the bank microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total operations (transfers + audits) across all threads.
    pub total_ops: u64,
    /// Number of accounts (each on its own cache line; at least 2).
    pub accounts: u64,
    /// Starting balance per account.
    pub initial_balance: u64,
    /// Operation mix.
    pub mix: Mix,
}

impl Cfg {
    /// A configuration with the default footprint.
    pub fn new(base: BaseCfg, total_ops: u64, mix: Mix) -> Self {
        Cfg {
            base,
            total_ops,
            accounts: 16,
            initial_balance: 128,
            mix,
        }
    }
}

/// Per-thread tallies for the conservation oracle.
#[derive(Clone, Default)]
struct Tally {
    /// Net committed balance change per account (credits - debits).
    net: Vec<i64>,
    transfers: u64,
    /// Transfers skipped because the source balance was short.
    skipped: u64,
    audits: u64,
    /// Audits whose observed grand total differed from the conserved one.
    bad_audits: u64,
}

const R_I: usize = 0;
const R_AUDIT: usize = 1;
const R_SRC: usize = 2;
const R_DST: usize = 3;
const R_AMT: usize = 4;
const R_ACCT: usize = 5;
const R_BAR: usize = 6; // and R_BAR + 1, barrier scratch

/// Runs the benchmark; verifies balance conservation and audit
/// consistency.
///
/// # Panics
///
/// Panics if any balance disagrees with the committed transfers, or any
/// audit observed a non-conserved total.
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    accounts: Vec<Addr>,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    assert!(cfg.accounts >= 2, "transfers need at least two accounts");
    let mut b = cfg.base.builder();
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();

    // One balance per account, each on its own line (no false sharing
    // under the baseline). Balances start at zero and are *seeded by the
    // programs* below, so under CommTM every thread begins holding its
    // own partial share of every account.
    let accounts: Vec<Addr> = (0..cfg.accounts)
        .map(|_| m.heap_mut().alloc_lines(1))
        .collect();
    let barrier = m.heap_mut().alloc_lines(1);
    let expected_total = cfg.initial_balance * cfg.accounts;
    let audit_pct = cfg.mix.audit_pct();
    let naccounts = cfg.accounts;
    let threads = cfg.base.threads;

    for t in 0..threads {
        let iters = cfg.base.share(cfg.total_ops, t);
        let accounts = accounts.clone();
        let mut p = Program::builder();
        // Seeding phase: each thread credits its share of every account's
        // initial balance with labeled ADDs — the deposits land in *its*
        // partial values, the same way refcount starts every thread with
        // `initial_refs` of its own (a central poke would hand the whole
        // balance to whichever core touched the line first, and every
        // other thread's debits would gather from the start).
        let my_share = cfg.base.share(cfg.initial_balance, t);
        if my_share > 0 {
            let accounts_seed = accounts.clone();
            let seed_top = p.here();
            p.tx(move |c| {
                let a = accounts_seed[c.reg(R_ACCT) as usize];
                let v = c.load_l(add, a);
                c.store_l(add, a, v + my_share);
            });
            p.ctl(move |c| {
                c.regs[R_ACCT] += 1;
                if c.regs[R_ACCT] < naccounts {
                    Ctl::Jump(seed_top)
                } else {
                    Ctl::Next
                }
            });
        }
        // Audits must only ever observe the fully-seeded total.
        emit_barrier(&mut p, barrier, threads as u64, R_BAR);
        if iters > 0 {
            let top = p.here();
            // Choose the operation: audit or a (src, dst, amount) triple.
            p.ctl(move |c| {
                c.regs[R_AUDIT] = u64::from(c.rand_below(100) < audit_pct);
                let src = c.rand_below(naccounts);
                c.regs[R_SRC] = src;
                c.regs[R_DST] = (src + 1 + c.rand_below(naccounts - 1)) % naccounts;
                c.regs[R_AMT] = 1 + c.rand_below(3);
                Ctl::Next
            });
            let accounts_tx = accounts.clone();
            p.tx(move |c| {
                if c.reg(R_AUDIT) == 1 {
                    // Audit: a plain read of every balance reduces all
                    // U-state partials; the snapshot must be conserved.
                    let mut sum = 0u64;
                    for &a in &accounts_tx {
                        sum += c.load(a);
                    }
                    c.work(4 * accounts_tx.len() as u64);
                    c.defer(move |s: &mut Tally| {
                        s.audits += 1;
                        s.bad_audits += u64::from(sum != expected_total);
                    });
                } else {
                    let src = c.reg(R_SRC) as usize;
                    let dst = c.reg(R_DST) as usize;
                    let amt = c.reg(R_AMT);
                    // Debit: the paper's bounded decrement (Sec. IV) —
                    // commutes while the local partial covers the amount,
                    // then gathers from other partials, then falls back
                    // to a plain reducing read. A transfer whose source
                    // truly cannot cover the amount is *declined*
                    // (counted, and part of the oracle's arithmetic).
                    let mut v = c.load_l(add, accounts_tx[src]);
                    if v < amt {
                        v = c.load_gather(add, accounts_tx[src]);
                    }
                    if v < amt {
                        v = c.load(accounts_tx[src]);
                    }
                    if v < amt {
                        c.defer(|s: &mut Tally| s.skipped += 1);
                    } else {
                        c.store_l(add, accounts_tx[src], v - amt);
                        // Credit: increments always commute.
                        let w = c.load_l(add, accounts_tx[dst]);
                        c.store_l(add, accounts_tx[dst], w + amt);
                        c.defer(move |s: &mut Tally| {
                            s.transfers += 1;
                            s.net[src] -= amt as i64;
                            s.net[dst] += amt as i64;
                        });
                    }
                }
            });
            p.ctl(move |c| {
                c.regs[R_I] += 1;
                if c.regs[R_I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(
            t,
            p.build(),
            Tally {
                net: vec![0; cfg.accounts as usize],
                ..Tally::default()
            },
        );
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux { accounts }),
    }
}

/// The oracle: every balance equals its initial value plus the committed
/// net transfers against it, the grand total is conserved, every audit
/// observed the conserved total, and every operation is accounted for.
///
/// # Panics
///
/// Panics on a conservation or audit-consistency violation.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let accounts = out
        .aux
        .downcast_ref::<Aux>()
        .expect("bank aux")
        .accounts
        .clone();
    let m = &mut out.machine;
    let threads = cfg.base.threads;

    let mut total = 0u64;
    for (i, &a) in accounts.iter().enumerate() {
        let net: i64 = (0..threads).map(|t| m.env(t).user::<Tally>().net[i]).sum();
        let want = cfg.initial_balance as i64 + net;
        let got = m.read_word(a);
        assert_eq!(
            got as i64, want,
            "account {i}: balance must equal initial + committed net transfers"
        );
        total += got;
    }
    assert_eq!(
        total,
        cfg.initial_balance * cfg.accounts,
        "grand total must be conserved"
    );
    let mut ops = 0u64;
    let mut bad_audits = 0u64;
    for t in 0..threads {
        let s = m.env(t).user::<Tally>();
        ops += s.transfers + s.skipped + s.audits;
        bad_audits += s.bad_audits;
    }
    assert_eq!(ops, cfg.total_ops, "every operation committed exactly once");
    assert_eq!(
        bad_audits, 0,
        "every audit must observe the conserved grand total"
    );
    m.check_invariants().expect("coherence invariants");
}

/// The registered bank workload.
pub struct Bank;

impl Bank {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        let mix = Mix::parse(p.text("mix")).expect("mix validated by schema choices");
        let mut cfg = Cfg::new(base, p.u64("total_ops"), mix);
        cfg.accounts = p.u64("accounts");
        cfg.initial_balance = p.u64("initial_balance");
        cfg
    }
}

impl Workload for Bank {
    fn name(&self) -> &'static str {
        "bank"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "account transfers with consistent audits (named mixes)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let acct = |i: u64| Addr::new(0x1000 + 64 * i);
        let transfer = move |core: usize, src: u64, dst: u64, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let amt = inp.get(key);
                ctx.txn(core, |t| {
                    // Bounded debit (Sec. IV), then a labeled credit.
                    let mut v = t.load_l(add, acct(src));
                    if v < amt {
                        v = t.gather(add, acct(src));
                    }
                    if v < amt {
                        v = t.load(acct(src));
                    }
                    if v >= amt {
                        t.store_l(add, acct(src), v - amt);
                        let w = t.load_l(add, acct(dst));
                        t.store_l(add, acct(dst), w + amt);
                    }
                });
            }
        };
        vec![
            Claim::new(
                "bank/disjoint-transfers-commute",
                "transfers between disjoint account pairs preserve every \
                 balance and the grand total in either order",
            )
            .label(labels::add())
            .input("b0", 100..=10_000)
            .input("b1", 100..=10_000)
            .input("b2", 100..=10_000)
            .input("b3", 100..=10_000)
            .input("amta", 1..=100)
            .input("amtb", 1..=100)
            .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| {
                ctx.poke(acct(0), inp.get("b0"));
                ctx.poke(acct(1), inp.get("b1"));
                ctx.poke(acct(2), inp.get("b2"));
                ctx.poke(acct(3), inp.get("b3"));
            })
            .op_a(transfer(0, 0, 1, "amta"))
            .op_b(transfer(1, 2, 3, "amtb"))
            .probe(move |ctx: &mut ClaimCtx| (0..4).map(|i| ctx.read(0, acct(i))).collect()),
            Claim::new(
                "bank/credit-commutes-with-audit",
                "a labeled credit hitting an exclusive (audit-warmed) copy \
                 commutes with a remote audit read — the PR-4 E-state \
                 value-resurrection regression, staked as a claim",
            )
            .cores(3)
            .label(labels::add())
            .input("init", 0..=100_000)
            .input("amt", 1..=1_000)
            .setup(move |ctx: &mut ClaimCtx, inp: &Inputs| {
                ctx.poke(acct(0), inp.get("init"));
                // Audit pass: the sole reader takes the line in E.
                ctx.read(0, acct(0));
            })
            .op_a(move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let amt = inp.get("amt");
                ctx.txn(0, |t| {
                    let v = t.load_l(add, acct(0));
                    t.store_l(add, acct(0), v.wrapping_add(amt));
                });
            })
            .op_b(move |ctx: &mut ClaimCtx, _inp: &Inputs| {
                ctx.txn(1, |t| {
                    t.load(acct(0));
                });
            })
            .probe(move |ctx: &mut ClaimCtx| vec![ctx.logical_w0(acct(0)), ctx.read(2, acct(0))]),
        ]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new()
            .u64_per_scale("total_ops", 8_000, "total transfer + audit operations")
            .u64("accounts", 16, "accounts, one cache line each (min 2)")
            .u64("initial_balance", 128, "starting balance per account")
            .text_choices(
                "mix",
                "mixed",
                MIXES,
                "operation mix: audit share of 1% / 20% / 50%",
            )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn balances_conserve_under_both_schemes_and_all_mixes() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            for mix in [Mix::TransferHeavy, Mix::Mixed, Mix::AuditHeavy] {
                run(&Cfg::new(BaseCfg::new(4, scheme), 200, mix));
            }
        }
    }

    #[test]
    fn audits_fire_and_stay_consistent() {
        let mut cfg = Cfg::new(BaseCfg::new(8, Scheme::CommTm), 400, Mix::AuditHeavy);
        cfg.accounts = 4;
        let r = run(&cfg);
        assert!(r.commits() >= 400);
    }

    #[test]
    fn single_thread_each_mix() {
        for mix in [Mix::TransferHeavy, Mix::Mixed, Mix::AuditHeavy] {
            run(&Cfg::new(BaseCfg::new(1, Scheme::CommTm), 80, mix));
        }
    }

    #[test]
    fn mix_names_roundtrip() {
        // The schema's declared choices and the parser are one list: a
        // mix added to either without the other fails here, not as a
        // mid-sweep panic after validation accepted the name.
        assert_eq!(MIXES, Mix::ALL.map(Mix::name));
        for &name in MIXES {
            assert_eq!(Mix::parse(name).unwrap().name(), name);
        }
        let err = Mix::parse("heavy").unwrap_err();
        assert!(err.contains("transfer-heavy"), "{err}");
    }

    #[test]
    fn commtm_beats_baseline_on_transfer_heavy() {
        let base = run(&Cfg::new(
            BaseCfg::new(8, Scheme::Baseline),
            400,
            Mix::TransferHeavy,
        ));
        let comm = run(&Cfg::new(
            BaseCfg::new(8, Scheme::CommTm),
            400,
            Mix::TransferHeavy,
        ));
        assert!(
            comm.total_cycles < base.total_cycles,
            "CommTM should win on commutative transfers ({} vs {})",
            comm.total_cycles,
            base.total_cycles
        );
    }
}
