//! Counter increments (paper Sec. VI, Fig. 9): every thread increments one
//! shared counter in short transactions. Conventional HTMs serialize all of
//! them; CommTM's ADD label makes them local and concurrent (the paper's
//! Fig. 1 example).

use commtm::prelude::*;

use crate::claims::{Claim, ClaimCtx, Inputs};
use crate::workload::{RunOutcome, Workload, WorkloadKind};
use crate::{BaseCfg, ParamSchema, Params};

/// Configuration for the counter microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct Cfg {
    /// Threads, scheme, seed.
    pub base: BaseCfg,
    /// Total increments across all threads (the paper uses 10M).
    pub total_incs: u64,
}

impl Cfg {
    /// Default size for quick runs.
    pub fn new(base: BaseCfg, total_incs: u64) -> Self {
        Cfg { base, total_incs }
    }
}

/// Runs the benchmark and verifies that every increment was applied
/// exactly once.
///
/// # Panics
///
/// Panics if the final counter value differs from the number of committed
/// increments (a lost or duplicated update).
pub fn run(cfg: &Cfg) -> RunReport {
    let mut out = execute(cfg);
    check(cfg, &mut out);
    out.report
}

/// What the oracle needs from the simulation setup.
struct Aux {
    counter: Addr,
}

/// Runs the simulation without checking the oracle.
pub fn execute(cfg: &Cfg) -> RunOutcome {
    let mut b = cfg.base.builder();
    let add = b.register_label(labels::add()).expect("label budget");
    let mut m = b.build();
    let counter = m.heap_mut().alloc_lines(1);

    for t in 0..cfg.base.threads {
        let iters = cfg.base.share(cfg.total_incs, t);
        const I: usize = 0;
        let mut p = Program::builder();
        if iters > 0 {
            let top = p.here();
            p.tx(move |c| {
                let v = c.load_l(add, counter);
                c.store_l(add, counter, v + 1);
            });
            p.ctl(move |c| {
                c.regs[I] += 1;
                if c.regs[I] < iters {
                    Ctl::Jump(top)
                } else {
                    Ctl::Done
                }
            });
        }
        m.set_program(t, p.build(), ());
    }

    let report = m.run().expect("simulation");
    RunOutcome {
        machine: m,
        report,
        aux: Box::new(Aux { counter }),
    }
}

/// The sequential oracle: the counter equals the number of increments and
/// every increment committed exactly once.
///
/// # Panics
///
/// Panics on a lost or duplicated update.
pub fn check(cfg: &Cfg, out: &mut RunOutcome) {
    let counter = out.aux.downcast_ref::<Aux>().expect("counter aux").counter;
    let v = out.machine.read_word(counter);
    assert_eq!(
        v, cfg.total_incs,
        "counter must equal the number of increments"
    );
    assert_eq!(
        out.report.commits(),
        cfg.total_incs,
        "one commit per increment"
    );
    out.machine
        .check_invariants()
        .expect("coherence invariants");
}

/// The registered Fig. 9 counter workload.
pub struct Counter;

impl Counter {
    fn cfg(&self, base: BaseCfg, p: &Params) -> Cfg {
        Cfg::new(base, p.u64("total_incs"))
    }
}

impl Workload for Counter {
    fn name(&self) -> &'static str {
        "counter"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Micro
    }

    fn summary(&self) -> &'static str {
        "shared-counter increments (Fig. 9)"
    }

    fn commutativity_claims(&self) -> Vec<Claim> {
        let add = LabelId::new(0);
        let ctr = Addr::new(0x1000);
        let inc = move |core: usize, key: &'static str| {
            move |ctx: &mut ClaimCtx, inp: &Inputs| {
                let d = inp.get(key);
                ctx.txn(core, |t| {
                    let v = t.load_l(add, ctr);
                    t.store_l(add, ctr, v.wrapping_add(d));
                });
            }
        };
        vec![Claim::new(
            "counter/increments-commute",
            "two transactional ADD-labeled increments to one shared counter",
        )
        .label(labels::add())
        .input("init", 0..=1_000_000)
        .input("da", 1..=1_000)
        .input("db", 1..=1_000)
        .setup(move |ctx, inp| ctx.poke(ctr, inp.get("init")))
        .op_a(inc(0, "da"))
        .op_b(inc(1, "db"))
        .probe(move |ctx| vec![ctx.logical_w0(ctr), ctx.read(0, ctr)])]
    }

    fn schema(&self) -> ParamSchema {
        ParamSchema::new().u64_per_scale(
            "total_incs",
            20_000,
            "total increments across all threads (the paper uses 10M)",
        )
    }

    fn run(&self, base: BaseCfg, params: &Params) -> RunOutcome {
        execute(&self.cfg(base, params))
    }

    fn oracle(&self, base: &BaseCfg, params: &Params, run: &mut RunOutcome) {
        check(&self.cfg(*base, params), run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commtm::Scheme;

    #[test]
    fn both_schemes_are_correct() {
        for scheme in [Scheme::Baseline, Scheme::CommTm] {
            run(&Cfg::new(BaseCfg::new(4, scheme), 200));
        }
    }

    #[test]
    fn commtm_avoids_all_aborts() {
        let r = run(&Cfg::new(BaseCfg::new(8, Scheme::CommTm), 400));
        assert_eq!(r.aborts(), 0);
        let r = run(&Cfg::new(BaseCfg::new(8, Scheme::Baseline), 400));
        assert!(r.aborts() > 0);
    }

    #[test]
    fn single_thread_works() {
        run(&Cfg::new(BaseCfg::new(1, Scheme::CommTm), 50));
    }

    #[test]
    fn uneven_split_is_exact() {
        run(&Cfg::new(BaseCfg::new(3, Scheme::CommTm), 100));
    }
}
