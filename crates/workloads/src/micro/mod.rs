//! The paper's microbenchmarks (Sec. VI), plus the `bank`
//! transfer/audit microbenchmark.

pub mod bank;
pub mod counter;
pub mod list;
pub mod oput;
pub mod refcount;
pub mod topk;
