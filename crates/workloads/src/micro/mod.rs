//! The paper's microbenchmarks (Sec. VI).

pub mod counter;
pub mod list;
pub mod oput;
pub mod refcount;
pub mod topk;
