//! Commutativity claims: executable contracts a workload stakes about
//! pairs of labeled operations it believes commute.
//!
//! The paper's correctness story (Sec. III) rests on labeled operations
//! actually commuting; Koskinen & Bansal reduce checking that to
//! reachability over *state differences*. A [`Claim`] is the workload-level
//! instance of that idea: two operations (`op_a`, `op_b`), a randomized
//! input space, and a **probe** — a projection of the machine's final
//! logical state (via `MemSystem::logical_w0` and coherent reads) that
//! serves as the differencing abstraction. The verification harness
//! (`commtm-verify`) runs both interleavings of the pair from identical
//! randomized machine states and demands probe equality, shrinking inputs
//! to a minimal counterexample when they differ.
//!
//! Claims execute against a real [`MemSystem`] (not the full `Machine`),
//! so every protocol path a workload leans on — U-state conversions,
//! gathers, reductions on plain reads, E→M upgrades — is exercised
//! faithfully, while op ordering stays under the harness's control.

use std::ops::RangeInclusive;
use std::sync::Arc;

use commtm::{Addr, CoreId, LabelDef, LabelId};
use commtm_protocol::{LabelTable, MemOp, MemSystem, ProtoConfig, TxTable};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A live machine a claim's operations run against: a [`MemSystem`] plus
/// the transaction table and timestamp counter needed to drive it.
pub struct ClaimCtx {
    sys: MemSystem,
    txs: TxTable,
    cores: usize,
    next_ts: u64,
}

impl ClaimCtx {
    /// Builds a fresh machine with the paper's cache geometry scaled to
    /// `cores`, registering `labels` in order (so `LabelId::new(0)` names
    /// the first label a claim declared).
    ///
    /// # Panics
    ///
    /// Panics if more than the architectural maximum of labels is given.
    pub fn new(cores: usize, labels: &[LabelDef]) -> Self {
        let mut table = LabelTable::new();
        for def in labels {
            table.register(def.clone()).expect("label budget");
        }
        ClaimCtx {
            sys: MemSystem::new(ProtoConfig::paper_with_cores(cores), table),
            txs: TxTable::new(cores),
            cores,
            next_ts: 1,
        }
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Writes a word directly to memory (pre-traffic setup only).
    ///
    /// # Panics
    ///
    /// Panics if the line is already cached.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.sys.poke_word(addr, value);
    }

    /// Non-transactional coherent read at `core`; triggers reductions, so
    /// it observes (and collapses) the full logical value.
    pub fn read(&mut self, core: usize, addr: Addr) -> u64 {
        self.sys
            .read_word_coherent(CoreId::new(core), addr, &mut self.txs)
    }

    /// The logical word-0 value of `addr`'s line without perturbing any
    /// cache state (see `MemSystem::logical_w0`). Only meaningful for
    /// ADD-reducible lines, whose partials sum.
    pub fn logical_w0(&self, addr: Addr) -> u64 {
        self.sys.logical_w0(addr.line())
    }

    /// Runs the whole-hierarchy coherence audit.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant's description.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.sys.check_invariants()
    }

    /// Runs `body` as one transaction on `core`, committing on success and
    /// retrying (bounded) after self-aborts — the same
    /// backoff-and-restart discipline the HTM engine applies, minus the
    /// timing model.
    ///
    /// # Panics
    ///
    /// Panics if the transaction aborts 16 times in a row; claims are
    /// sequential, so persistent aborts indicate a machine-setup bug.
    pub fn txn(&mut self, core: usize, body: impl Fn(&mut TxOps<'_>)) {
        const MAX_ATTEMPTS: usize = 16;
        let c = CoreId::new(core);
        for _ in 0..MAX_ATTEMPTS {
            let ts = self.next_ts;
            self.next_ts += 1;
            self.txs.begin(c, ts);
            let mut ops = TxOps {
                ctx: self,
                core: c,
                aborted: false,
            };
            body(&mut ops);
            let aborted = ops.aborted;
            if !aborted && self.txs.entry(c).active {
                self.sys.commit_core(c);
                self.txs.end(c);
                return;
            }
            // The protocol rolled the speculative state back; clear the
            // table entry (if still marked active) and retry.
            if self.txs.entry(c).active {
                self.sys.rollback_core(c);
                self.txs.end(c);
            }
        }
        panic!("claim transaction on core {core} aborted {MAX_ATTEMPTS} times");
    }

    /// Randomizes incidental machine state — cache occupancy, E/S/M line
    /// states, directory entries — with reads and writes to a scratch
    /// region disjoint from claim data. Both interleavings of a claim run
    /// after an identical scramble, so the randomized state is shared
    /// context, never a hidden input.
    pub fn scramble(&mut self, seed: u64) {
        const SCRATCH: u64 = 0x7F_0000;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C7A_4B1E);
        let rounds = rng.random_range(4..16u32);
        for _ in 0..rounds {
            let core = CoreId::new(rng.random_range(0..self.cores as u64) as usize);
            let addr = Addr::new(SCRATCH + 64 * rng.random_range(0..32u64));
            if rng.random_range(0..2u32) == 0 {
                self.sys.access(core, MemOp::Load, addr, &mut self.txs);
            } else {
                let v = rng.random_range(0..1000u64);
                self.sys.access(core, MemOp::Store(v), addr, &mut self.txs);
            }
        }
    }
}

/// The operations available inside a [`ClaimCtx::txn`] body. After a
/// self-abort every further operation is a no-op returning zero; the
/// enclosing `txn` retry loop restarts the body.
pub struct TxOps<'a> {
    ctx: &'a mut ClaimCtx,
    core: CoreId,
    aborted: bool,
}

impl TxOps<'_> {
    fn op(&mut self, op: MemOp, addr: Addr) -> u64 {
        if self.aborted {
            return 0;
        }
        let acc = self.ctx.sys.access(self.core, op, addr, &mut self.ctx.txs);
        if acc.self_abort.is_some() {
            self.aborted = true;
        }
        acc.value
    }

    /// Plain transactional load.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.op(MemOp::Load, addr)
    }

    /// Plain transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.op(MemOp::Store(value), addr);
    }

    /// Labeled load: the local U-state partial value.
    pub fn load_l(&mut self, label: LabelId, addr: Addr) -> u64 {
        self.op(MemOp::LoadL(label), addr)
    }

    /// Labeled store: overwrites the local U-state partial value.
    pub fn store_l(&mut self, label: LabelId, addr: Addr, value: u64) {
        self.op(MemOp::StoreL(label, value), addr);
    }

    /// Gather request: steals value from other sharers via the label's
    /// splitter and returns the refreshed local partial.
    pub fn gather(&mut self, label: LabelId, addr: Addr) -> u64 {
        self.op(MemOp::Gather(label), addr)
    }

    /// Whether this attempt has self-aborted.
    pub fn aborted(&self) -> bool {
        self.aborted
    }
}

/// A named randomized input: the harness draws uniformly from the range
/// and shrinks toward its low end.
#[derive(Clone, Debug)]
pub struct InputSpec {
    /// Name the claim's closures look the drawn value up by.
    pub name: &'static str,
    /// Inclusive low end (the shrinking target).
    pub lo: u64,
    /// Inclusive high end.
    pub hi: u64,
}

/// One concrete assignment of a claim's inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inputs {
    pairs: Vec<(&'static str, u64)>,
}

impl Inputs {
    /// Builds an assignment; order must match the claim's [`InputSpec`]s.
    pub fn new(pairs: Vec<(&'static str, u64)>) -> Self {
        Inputs { pairs }
    }

    /// Looks a value up by name.
    ///
    /// # Panics
    ///
    /// Panics if the claim declared no input of that name.
    pub fn get(&self, name: &str) -> u64 {
        self.pairs
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("claim has no input named {name:?}"))
            .1
    }

    /// The value at position `i`.
    pub fn value(&self, i: usize) -> u64 {
        self.pairs[i].1
    }

    /// Overwrites the value at position `i` (used by shrinking).
    pub fn set(&mut self, i: usize, v: u64) {
        self.pairs[i].1 = v;
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the claim has no inputs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Human-readable `name=value` listing.
    pub fn describe(&self) -> String {
        self.pairs
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// How the harness compares the two interleavings' probe vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeEquality {
    /// Bit-exact word equality (every integer label).
    Exact,
    /// Words are f64 bit patterns; each pair must agree within
    /// `rel * max(1, |x|, |y|)` — the paper's "semantically but not
    /// bit-exactly" commutative carve-out for FP ADD.
    FpTolerance {
        /// Relative tolerance.
        rel: f64,
    },
}

impl ProbeEquality {
    /// Whether two probe vectors agree under this mode.
    pub fn probes_agree(&self, a: &[u64], b: &[u64]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        match *self {
            ProbeEquality::Exact => a == b,
            ProbeEquality::FpTolerance { rel } => a.iter().zip(b).all(|(&x, &y)| {
                let (fx, fy) = (f64::from_bits(x), f64::from_bits(y));
                if !fx.is_finite() || !fy.is_finite() {
                    return x == y;
                }
                (fx - fy).abs() <= rel * fx.abs().max(fy.abs()).max(1.0)
            }),
        }
    }
}

/// Which operation runs first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOrder {
    /// `op_a` then `op_b`.
    AB,
    /// `op_b` then `op_a`.
    BA,
}

type OpFn = Arc<dyn Fn(&mut ClaimCtx, &Inputs) + Send + Sync>;
type ProbeFn = Arc<dyn Fn(&mut ClaimCtx) -> Vec<u64> + Send + Sync>;

/// A commutativity claim: two operations the workload believes commute,
/// with a randomized input space and a logical-state probe. Built with a
/// fluent API; executed by `commtm-verify`.
#[derive(Clone)]
pub struct Claim {
    name: &'static str,
    about: &'static str,
    cores: usize,
    labels: Vec<LabelDef>,
    inputs: Vec<InputSpec>,
    setup: Option<OpFn>,
    op_a: Option<OpFn>,
    op_b: Option<OpFn>,
    probe: Option<ProbeFn>,
    equality: ProbeEquality,
}

impl Claim {
    /// Starts a claim with a registry-style name (`workload/what-commutes`)
    /// and a one-line rationale. Defaults: 2 cores, exact probe equality.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Claim {
            name,
            about,
            cores: 2,
            labels: Vec::new(),
            inputs: Vec::new(),
            setup: None,
            op_a: None,
            op_b: None,
            probe: None,
            equality: ProbeEquality::Exact,
        }
    }

    /// Sets the simulated core count (ops may address any core below it).
    pub fn cores(mut self, n: usize) -> Self {
        self.cores = n;
        self
    }

    /// Registers a label; the first call gets `LabelId::new(0)`, etc.
    pub fn label(mut self, def: LabelDef) -> Self {
        self.labels.push(def);
        self
    }

    /// Declares a named randomized input drawn from `range`.
    pub fn input(mut self, name: &'static str, range: RangeInclusive<u64>) -> Self {
        self.inputs.push(InputSpec {
            name,
            lo: *range.start(),
            hi: *range.end(),
        });
        self
    }

    /// Initializes memory (pokes) and any warm-up traffic. Runs before the
    /// state scramble and both operations, identically in both orders.
    pub fn setup(mut self, f: impl Fn(&mut ClaimCtx, &Inputs) + Send + Sync + 'static) -> Self {
        self.setup = Some(Arc::new(f));
        self
    }

    /// The first operation of the claimed-commuting pair.
    pub fn op_a(mut self, f: impl Fn(&mut ClaimCtx, &Inputs) + Send + Sync + 'static) -> Self {
        self.op_a = Some(Arc::new(f));
        self
    }

    /// The second operation of the claimed-commuting pair.
    pub fn op_b(mut self, f: impl Fn(&mut ClaimCtx, &Inputs) + Send + Sync + 'static) -> Self {
        self.op_b = Some(Arc::new(f));
        self
    }

    /// The differencing abstraction: a projection of final logical state
    /// that both interleavings must agree on.
    pub fn probe(mut self, f: impl Fn(&mut ClaimCtx) -> Vec<u64> + Send + Sync + 'static) -> Self {
        self.probe = Some(Arc::new(f));
        self
    }

    /// Overrides the probe comparison mode (FP labels).
    pub fn equality(mut self, e: ProbeEquality) -> Self {
        self.equality = e;
        self
    }

    /// The claim's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The claim's one-line rationale.
    pub fn about(&self) -> &'static str {
        self.about
    }

    /// The declared input space.
    pub fn input_specs(&self) -> &[InputSpec] {
        &self.inputs
    }

    /// The probe comparison mode.
    pub fn probe_equality(&self) -> ProbeEquality {
        self.equality
    }

    /// Runs one interleaving from a fresh machine: setup, state scramble,
    /// the two ops in `order`, then the probe.
    ///
    /// # Errors
    ///
    /// Returns the description of a violated coherence invariant (itself a
    /// verification failure).
    ///
    /// # Panics
    ///
    /// Panics if the claim is missing `op_a`, `op_b`, or `probe`.
    pub fn run_order(
        &self,
        inputs: &Inputs,
        order: OpOrder,
        scramble_seed: u64,
    ) -> Result<Vec<u64>, String> {
        let op_a = self.op_a.as_ref().expect("claim is missing op_a");
        let op_b = self.op_b.as_ref().expect("claim is missing op_b");
        let probe = self.probe.as_ref().expect("claim is missing probe");
        let mut ctx = ClaimCtx::new(self.cores, &self.labels);
        if let Some(setup) = &self.setup {
            setup(&mut ctx, inputs);
        }
        ctx.scramble(scramble_seed);
        match order {
            OpOrder::AB => {
                op_a(&mut ctx, inputs);
                op_b(&mut ctx, inputs);
            }
            OpOrder::BA => {
                op_b(&mut ctx, inputs);
                op_a(&mut ctx, inputs);
            }
        }
        let p = probe(&mut ctx);
        ctx.check_invariants()?;
        Ok(p)
    }
}

impl std::fmt::Debug for Claim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Claim")
            .field("name", &self.name)
            .field("cores", &self.cores)
            .field("labels", &self.labels.len())
            .field("inputs", &self.inputs)
            .finish()
    }
}
