//! Cache geometry: size, associativity, indexing.

use commtm_mem::{LineAddr, LINE_BYTES};

/// The geometry of a set-associative cache with 64-byte lines.
///
/// # Example
///
/// ```
/// use commtm_cache::CacheGeometry;
///
/// // The paper's 32KB 8-way L1D: 64 sets.
/// let g = CacheGeometry::from_size(32 * 1024, 8);
/// assert_eq!(g.sets(), 64);
/// assert_eq!(g.ways(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Builds a geometry from a total size in bytes and an associativity.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `ways` lines, or if
    /// the resulting set count is not a power of two.
    pub fn from_size(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be non-zero");
        let lines = size_bytes / LINE_BYTES as usize;
        assert_eq!(
            lines * LINE_BYTES as usize,
            size_bytes,
            "size must be a whole number of lines"
        );
        assert_eq!(lines % ways, 0, "size must be a whole number of ways");
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheGeometry { sets, ways }
    }

    /// Builds a geometry directly from set and way counts.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and both counts are non-zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "set count must be a power of two"
        );
        assert!(ways > 0, "associativity must be non-zero");
        CacheGeometry { sets, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways (associativity).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.lines() * LINE_BYTES as usize
    }

    /// The set index a line maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        // Table I: L1D 32KB 8-way, L2 128KB 8-way, L3 bank 4MB 16-way.
        assert_eq!(CacheGeometry::from_size(32 * 1024, 8).sets(), 64);
        assert_eq!(CacheGeometry::from_size(128 * 1024, 8).sets(), 256);
        assert_eq!(CacheGeometry::from_size(4 * 1024 * 1024, 16).sets(), 4096);
    }

    #[test]
    fn indexing_wraps_by_set_count() {
        let g = CacheGeometry::new(64, 8);
        assert_eq!(g.set_of(LineAddr::new(0)), 0);
        assert_eq!(g.set_of(LineAddr::new(64)), 0);
        assert_eq!(g.set_of(LineAddr::new(65)), 1);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.size_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        CacheGeometry::new(48, 8);
    }

    #[test]
    #[should_panic(expected = "whole number of ways")]
    fn ragged_size_panics() {
        CacheGeometry::from_size(100 * LINE_BYTES as usize, 8);
    }
}
