//! Generic set-associative cache array with LRU and reserved-way fills.

use std::sync::Arc;

use commtm_mem::{LineAddr, LineData};

use crate::geometry::CacheGeometry;

/// One resident cache line: tag, data, caller-defined metadata.
#[derive(Clone, Debug)]
pub struct Entry<M> {
    /// The line address this entry caches.
    pub tag: LineAddr,
    /// The cached data.
    pub data: LineData,
    /// Level-specific metadata (state, spec bits, directory info...).
    pub meta: M,
    lru: u64,
}

/// How a fill is classified for the paper's reserved-way policy
/// (Sec. III-B4): one way per set is reserved for data with permissions
/// other than U, and misses from reduction handlers always fill that way,
/// so handler misses can never evict reducible data (which would require a
/// nested reduction and could deadlock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionClass {
    /// Ordinary non-reducible data: may occupy any way.
    NonReducible,
    /// U-state data: must not occupy the reserved way.
    Reducible,
    /// A fill issued by a reduction handler or splitter: uses the reserved
    /// way only.
    Handler,
}

/// The result of a fill: the victim entry, if one had to be evicted.
#[derive(Debug)]
pub struct FillOutcome<M> {
    /// The evicted entry, for the caller to write back or abort on.
    pub victim: Option<Entry<M>>,
    /// The slot the new line landed in.
    pub slot: Slot,
}

/// A handle to a resident line, returned by [`CacheArray::lookup`] and
/// [`CacheArray::fill`].
///
/// A `Slot` names a (set, way) position, so repeated accesses through it
/// skip the tag-matching set scan — this is what makes the protocol's
/// probe-once discipline possible (one [`CacheArray::lookup`] per line per
/// operation, then index-based access).
///
/// A slot stays valid until the next [`CacheArray::fill`] or
/// [`CacheArray::remove`] on the array, either of which may vacate or
/// repopulate the position; the `entry`/`entry_mut`/`touch` accessors check
/// occupancy (and, in debug builds, callers are expected to re-`lookup`
/// after any structural change).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot(usize);

/// A set-associative array with LRU replacement, generic over per-line
/// metadata.
///
/// # Example
///
/// ```
/// use commtm_cache::{CacheArray, CacheGeometry, EvictionClass};
/// use commtm_mem::{LineAddr, LineData};
///
/// let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(2, 2));
/// c.fill(LineAddr::new(4), LineData::zeroed(), 7, EvictionClass::NonReducible);
/// assert_eq!(c.get(LineAddr::new(4)).unwrap().meta, 7);
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    /// Entry storage, one lazily-allocated box per set: a paper-scale L3
    /// bank has 64K lines, and sweeps build one machine per grid cell, so
    /// eagerly zeroing every slot would put >100MB of memset on each
    /// cell's construction. Untouched sets stay `None`.
    sets: Vec<Option<Box<[Option<Entry<M>>]>>>,
    /// Tags duplicated in a dense side array ([`EMPTY_TAG`] when vacant):
    /// a w-way probe reads w consecutive words instead of w scattered
    /// `Entry` structs, so the per-operation tag scan touches one or two
    /// host cache lines. Invariant: `tags[set*ways + way]` mirrors
    /// `sets[set][way]`.
    ///
    /// The array is behind an `Arc` with copy-on-write semantics: a paper-
    /// scale L3 bank eagerly allocates 64K tag words, and the epoch-parallel
    /// engine clones the whole memory system once per worker, so a plain
    /// `Vec` would put megabytes of memcpy on every worker spawn. Cloning
    /// the array just bumps the refcount; the first mutation after a clone
    /// ([`Arc::make_mut`] in `fill`/`remove_slot`/the copy APIs) detaches a
    /// private copy, and every later mutation is in place again.
    tags: Arc<Vec<u64>>,
    tick: u64,
    resident: usize,
}

/// Sentinel for a vacant slot in the tag side-array. Line addresses are
/// line *indices* (byte address / 64), so the top of the u64 range is
/// unreachable by construction.
const EMPTY_TAG: u64 = u64::MAX;

impl<M> CacheArray<M> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let mut sets = Vec::new();
        sets.resize_with(geom.sets(), || None);
        CacheArray {
            geom,
            sets,
            tags: Arc::new(vec![EMPTY_TAG; geom.lines()]),
            tick: 0,
            resident: 0,
        }
    }

    /// Whether this array still shares its tag side-array allocation with
    /// `other` (copy-on-write not yet triggered). Engine/test support: the
    /// epoch engine's zero-copy worker spawn is asserted through this.
    pub fn tags_shared_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.tags, &other.tags)
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Locates a resident line without updating recency: the single
    /// tag-matching probe of an operation. All further access goes through
    /// the returned [`Slot`] via [`CacheArray::entry`],
    /// [`CacheArray::entry_mut`], and [`CacheArray::touch`].
    pub fn lookup(&self, line: LineAddr) -> Option<Slot> {
        let (base, ways) = self.set_range(line);
        let raw = line.raw();
        self.tags[base..base + ways]
            .iter()
            .position(|&t| t == raw)
            .map(|w| Slot(base + w))
    }

    /// The entry at a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been vacated since the lookup.
    pub fn entry(&self, slot: Slot) -> &Entry<M> {
        let ways = self.geom.ways();
        self.sets[slot.0 / ways]
            .as_ref()
            .expect("stale slot handle")[slot.0 % ways]
            .as_ref()
            .expect("stale slot handle")
    }

    /// The entry at a slot, mutably. Does not update recency; pair with
    /// [`CacheArray::touch`] where the access should refresh LRU order.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been vacated since the lookup.
    pub fn entry_mut(&mut self, slot: Slot) -> &mut Entry<M> {
        let ways = self.geom.ways();
        self.sets[slot.0 / ways]
            .as_mut()
            .expect("stale slot handle")[slot.0 % ways]
            .as_mut()
            .expect("stale slot handle")
    }

    /// Marks the entry at a slot most-recently used (the recency side of
    /// what [`CacheArray::get`] does).
    ///
    /// # Panics
    ///
    /// Panics if the slot has been vacated since the lookup.
    pub fn touch(&mut self, slot: Slot) {
        self.tick += 1;
        let tick = self.tick;
        self.entry_mut(slot).lru = tick;
    }

    /// The way index of a slot within its set.
    pub fn way_of_slot(&self, slot: Slot) -> usize {
        slot.0 % self.geom.ways()
    }

    /// Looks up a line without updating recency.
    pub fn peek(&self, line: LineAddr) -> Option<&Entry<M>> {
        self.lookup(line).map(|s| self.entry(s))
    }

    /// Looks up a line and marks it most-recently used.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut Entry<M>> {
        match self.lookup(line) {
            Some(s) => {
                self.touch(s);
                Some(self.entry_mut(s))
            }
            None => None,
        }
    }

    /// Whether a line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lookup(line).is_some()
    }

    /// Inserts a line, evicting a victim if the set is full.
    ///
    /// Way 0 of every set is the *reserved way*: [`EvictionClass::Handler`]
    /// fills use only way 0, and [`EvictionClass::Reducible`] fills avoid
    /// it (unless the cache is direct-mapped, where reservation is
    /// meaningless and disabled).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident.
    pub fn fill(
        &mut self,
        line: LineAddr,
        data: LineData,
        meta: M,
        class: EvictionClass,
    ) -> FillOutcome<M> {
        debug_assert!(!self.contains(line), "fill of resident line {line}");
        self.tick += 1;
        let tick = self.tick;
        let (base, ways) = self.set_range(line);
        let (lo, hi) = match class {
            EvictionClass::Handler if ways > 1 => (0usize, 1usize),
            EvictionClass::Reducible if ways > 1 => (1usize, ways),
            _ => (0usize, ways),
        };

        // Prefer an invalid slot in the allowed range.
        let range = self.sets[base / ways].get_or_insert_with(|| {
            let mut v = Vec::new();
            v.resize_with(ways, || None);
            v.into_boxed_slice()
        });
        let mut victim_way = None;
        let mut oldest = u64::MAX;
        for (w, slot) in range.iter().enumerate().take(hi).skip(lo) {
            match slot {
                None => {
                    victim_way = Some(w);
                    break;
                }
                Some(e) if e.lru < oldest => {
                    oldest = e.lru;
                    victim_way = Some(w);
                }
                Some(_) => {}
            }
        }
        let way = victim_way.expect("eviction range is never empty");
        let victim = range[way].take();
        range[way] = Some(Entry {
            tag: line,
            data,
            meta,
            lru: tick,
        });
        debug_assert_ne!(
            line.raw(),
            EMPTY_TAG,
            "line index collides with the vacant sentinel"
        );
        Arc::make_mut(&mut self.tags)[base + way] = line.raw();
        if victim.is_none() {
            self.resident += 1;
        }
        FillOutcome {
            victim,
            slot: Slot(base + way),
        }
    }

    /// Removes a line, returning its entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<Entry<M>> {
        let slot = self.lookup(line)?;
        Some(self.remove_slot(slot))
    }

    /// Removes the entry at a slot, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been vacated since the lookup.
    pub fn remove_slot(&mut self, slot: Slot) -> Entry<M> {
        let ways = self.geom.ways();
        let e = self.sets[slot.0 / ways]
            .as_mut()
            .expect("stale slot handle")[slot.0 % ways]
            .take()
            .expect("stale slot handle");
        Arc::make_mut(&mut self.tags)[slot.0] = EMPTY_TAG;
        self.resident -= 1;
        e
    }

    /// Iterates all resident entries (for invariant checks and recalls).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<M>> {
        self.sets
            .iter()
            .flatten()
            .flat_map(|set| set.iter())
            .flatten()
    }

    /// Iterates all resident entries mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry<M>> {
        self.sets
            .iter_mut()
            .flatten()
            .flat_map(|set| set.iter_mut())
            .flatten()
    }

    /// Number of resident lines. O(1): maintained on fill and remove.
    pub fn len(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.iter().count(),
            "resident-line counter out of sync"
        );
        self.resident
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The way index a resident line occupies (for tests).
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        self.lookup(line).map(|s| self.way_of_slot(s))
    }

    /// The set index a line maps to (geometry passthrough).
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.geom.set_of(line)
    }

    /// Replaces one whole set — entries, tags, and recency values — with
    /// the corresponding set of `src`, which must have the same geometry.
    ///
    /// Engine support for the epoch-parallel scheduler's merge step: when a
    /// speculative epoch proves conflict-free, every L3 set a worker
    /// touched is implanted back into the shared array. The recency
    /// counter is raised to `src`'s so future fills in *any* set still
    /// receive ticks larger than every implanted value (victim selection
    /// only compares recency within a set, so cross-set tick collisions
    /// between workers are harmless).
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ or `set` is out of range.
    pub fn copy_set_from(&mut self, src: &CacheArray<M>, set: usize)
    where
        M: Clone,
    {
        assert_eq!(
            (self.geom.sets(), self.geom.ways()),
            (src.geom.sets(), src.geom.ways()),
            "copy_set_from across different geometries"
        );
        let ways = self.geom.ways();
        let base = set * ways;
        let old = self.sets[set]
            .as_ref()
            .map_or(0, |s| s.iter().flatten().count());
        let new = src.sets[set]
            .as_ref()
            .map_or(0, |s| s.iter().flatten().count());
        Self::copy_set_storage(&mut self.sets[set], &src.sets[set], ways);
        if !Arc::ptr_eq(&self.tags, &src.tags) {
            Arc::make_mut(&mut self.tags)[base..base + ways]
                .copy_from_slice(&src.tags[base..base + ways]);
        }
        self.resident = self.resident - old + new;
        self.tick = self.tick.max(src.tick);
    }

    /// Overwrites this array to equal `src` (same geometry), reusing this
    /// array's existing per-set boxes instead of allocating fresh ones.
    ///
    /// Engine support for the epoch-parallel commit path: the base system
    /// re-absorbs each touched core's private caches every epoch, so a
    /// plain `clone()` there would allocate one box per occupied set per
    /// core per epoch. The tag side-array is adopted by refcount bump when
    /// the arrays have diverged allocations and copied in place otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Self)
    where
        M: Clone,
    {
        assert_eq!(
            (self.geom.sets(), self.geom.ways()),
            (src.geom.sets(), src.geom.ways()),
            "copy_from across different geometries"
        );
        let ways = self.geom.ways();
        for (dst, s) in self.sets.iter_mut().zip(src.sets.iter()) {
            Self::copy_set_storage(dst, s, ways);
        }
        if !Arc::ptr_eq(&self.tags, &src.tags) {
            match Arc::get_mut(&mut self.tags) {
                // Sole owner of our allocation: copy in place, no alloc.
                Some(tags) => tags.copy_from_slice(&src.tags),
                // Shared: adopt src's allocation by refcount bump.
                None => self.tags = Arc::clone(&src.tags),
            }
        }
        self.tick = src.tick;
        self.resident = src.resident;
    }

    /// Mirrors one set's storage from `s` into `dst`, reusing `dst`'s box
    /// when both sides are allocated.
    fn copy_set_storage(
        dst: &mut Option<Box<[Option<Entry<M>>]>>,
        s: &Option<Box<[Option<Entry<M>>]>>,
        ways: usize,
    ) where
        M: Clone,
    {
        match (dst.as_mut(), s) {
            (Some(d), Some(s)) => {
                debug_assert_eq!(d.len(), ways);
                for (d, s) in d.iter_mut().zip(s.iter()) {
                    d.clone_from(s);
                }
            }
            (None, Some(s)) => *dst = Some(s.clone()),
            (_, None) => *dst = None,
        }
    }

    fn set_range(&self, line: LineAddr) -> (usize, usize) {
        let ways = self.geom.ways();
        (self.geom.set_of(line) * ways, ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(set: u64, alias: u64, sets: u64) -> LineAddr {
        LineAddr::new(set + alias * sets)
    }

    #[test]
    fn fill_and_get() {
        let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(4, 2));
        let a = LineAddr::new(1);
        assert!(c
            .fill(a, LineData::splat(9), (), EvictionClass::NonReducible)
            .victim
            .is_none());
        assert_eq!(c.get(a).unwrap().data, LineData::splat(9));
        assert!(c.contains(a));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 2));
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(1), LineAddr::new(2));
        c.fill(a, LineData::zeroed(), 0, EvictionClass::NonReducible);
        c.fill(b, LineData::zeroed(), 1, EvictionClass::NonReducible);
        c.get(a); // a is now most recent; b is LRU
        let out = c.fill(d, LineData::zeroed(), 2, EvictionClass::NonReducible);
        assert_eq!(out.victim.unwrap().tag, b);
        assert!(c.contains(a) && c.contains(d));
    }

    #[test]
    fn handler_fills_use_reserved_way_only() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 4));
        for i in 0..4 {
            c.fill(
                LineAddr::new(i),
                LineData::zeroed(),
                i as u32,
                EvictionClass::NonReducible,
            );
        }
        let h = LineAddr::new(10);
        c.fill(h, LineData::zeroed(), 99, EvictionClass::Handler);
        assert_eq!(c.way_of(h), Some(0));
    }

    #[test]
    fn reducible_fills_avoid_reserved_way() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 4));
        for i in 0..8 {
            c.fill(
                LineAddr::new(i),
                LineData::zeroed(),
                0,
                EvictionClass::Reducible,
            );
            if i >= 4 {
                // Set stays at 3 resident reducible lines + empty way 0.
                assert_ne!(c.way_of(LineAddr::new(i)), Some(0));
            }
        }
        // Way 0 was never allocated by reducible fills.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn direct_mapped_disables_reservation() {
        let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(2, 1));
        let a = LineAddr::new(0);
        c.fill(a, LineData::zeroed(), (), EvictionClass::Reducible);
        assert_eq!(c.way_of(a), Some(0));
    }

    #[test]
    fn copy_set_from_implants_entries_tags_and_recency() {
        let sets = 4usize;
        let mut a: CacheArray<u32> = CacheArray::new(CacheGeometry::new(sets, 2));
        let mut b: CacheArray<u32> = CacheArray::new(CacheGeometry::new(sets, 2));
        // a: lines in sets 0 and 1; b: a different line in set 1, plus
        // extra ticks so its recency counter runs ahead.
        a.fill(
            LineAddr::new(0),
            LineData::splat(1),
            10,
            EvictionClass::NonReducible,
        );
        a.fill(
            LineAddr::new(1),
            LineData::splat(2),
            11,
            EvictionClass::NonReducible,
        );
        b.fill(
            LineAddr::new(5),
            LineData::splat(9),
            99,
            EvictionClass::NonReducible,
        );
        b.get(LineAddr::new(5));
        b.get(LineAddr::new(5));

        a.copy_set_from(&b, 1);
        // Set 1 now mirrors b: line 1 gone, line 5 present.
        assert!(!a.contains(LineAddr::new(1)));
        assert_eq!(a.peek(LineAddr::new(5)).unwrap().meta, 99);
        // Set 0 untouched; resident count adjusted.
        assert_eq!(a.peek(LineAddr::new(0)).unwrap().meta, 10);
        assert_eq!(a.len(), 2);
        // Recency ran forward: the next fill outranks every implanted tick.
        let out = a.fill(
            LineAddr::new(9),
            LineData::zeroed(),
            7,
            EvictionClass::NonReducible,
        );
        assert!(out.victim.is_none());
        let out = a.fill(
            LineAddr::new(13),
            LineData::zeroed(),
            8,
            EvictionClass::NonReducible,
        );
        assert_eq!(
            out.victim.unwrap().tag,
            LineAddr::new(5),
            "implanted line is older"
        );
    }

    #[test]
    fn remove_returns_entry() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 2));
        let a = LineAddr::new(3);
        c.fill(a, LineData::splat(1), 5, EvictionClass::NonReducible);
        let e = c.remove(a).unwrap();
        assert_eq!(e.meta, 5);
        assert!(!c.contains(a));
        assert!(c.remove(a).is_none());
    }

    /// One step of the model-equivalence trace: mirrors a [`CacheArray`]
    /// mutation against a naive map model.
    #[derive(Clone, Copy, Debug)]
    enum TraceOp {
        Fill(u64),
        Get(u64),
        Remove(u64),
        Touch(u64),
    }

    fn trace_op(raw: u64) -> TraceOp {
        let line = raw >> 2;
        match raw & 3 {
            0 => TraceOp::Fill(line),
            1 => TraceOp::Get(line),
            2 => TraceOp::Remove(line),
            _ => TraceOp::Touch(line),
        }
    }

    proptest! {
        /// The probe-once API (`lookup`/`entry`/`entry_mut`/`touch`/
        /// `remove_slot`) is observably equivalent to the scan-based one
        /// (`peek`/`get`/`contains`/`remove`): random fill/get/remove
        /// traces are replayed against a naive map model, and after every
        /// step both APIs must agree with the model and with each other.
        #[test]
        fn probe_once_matches_scan_model(raws in proptest::collection::vec(0u64..256, 1..300)) {
            let sets = 4u64;
            let mut c: CacheArray<u64> = CacheArray::new(CacheGeometry::new(sets as usize, 2));
            let mut model: std::collections::HashMap<LineAddr, u64> =
                std::collections::HashMap::new();
            for (i, raw) in raws.into_iter().enumerate() {
                let meta = i as u64;
                match trace_op(raw) {
                    TraceOp::Fill(l) => {
                        let l = line(l % sets, l / sets, sets);
                        if !c.contains(l) {
                            let out = c.fill(l, LineData::zeroed(), meta, EvictionClass::NonReducible);
                            if let Some(v) = out.victim {
                                prop_assert_eq!(model.remove(&v.tag), Some(v.meta));
                            }
                            model.insert(l, meta);
                            // The fill's slot handle points at the new entry.
                            prop_assert_eq!(c.entry(out.slot).tag, l);
                            prop_assert_eq!(c.lookup(l), Some(out.slot));
                        }
                    }
                    TraceOp::Get(l) => {
                        let l = line(l % sets, l / sets, sets);
                        let slot = c.lookup(l);
                        prop_assert_eq!(slot.is_some(), model.contains_key(&l));
                        if let Some(s) = slot {
                            let by_slot = (c.entry(s).tag, c.entry(s).meta);
                            let by_peek = c.peek(l).map(|e| (e.tag, e.meta)).unwrap();
                            prop_assert_eq!(by_slot, by_peek);
                            prop_assert_eq!(by_slot.1, model[&l]);
                            prop_assert_eq!(c.way_of_slot(s), c.way_of(l).unwrap());
                        } else {
                            prop_assert!(c.peek(l).is_none());
                            prop_assert!(c.get(l).is_none());
                        }
                    }
                    TraceOp::Remove(l) => {
                        let l = line(l % sets, l / sets, sets);
                        let via_slot = (raw / 4) % 2 == 0;
                        let removed = if via_slot {
                            c.lookup(l).map(|s| c.remove_slot(s))
                        } else {
                            c.remove(l)
                        };
                        prop_assert_eq!(removed.map(|e| e.meta), model.remove(&l));
                        prop_assert!(!c.contains(l));
                    }
                    TraceOp::Touch(l) => {
                        let l = line(l % sets, l / sets, sets);
                        // touch + entry_mut must be get, observably.
                        if let Some(s) = c.lookup(l) {
                            c.touch(s);
                            c.entry_mut(s).meta = meta;
                            model.insert(l, meta);
                            prop_assert_eq!(c.get(l).map(|e| e.meta), Some(meta));
                        }
                    }
                }
                prop_assert_eq!(c.len(), model.len());
            }
            // Final state: every modelled line resident, nothing extra.
            for (&l, &m) in &model {
                prop_assert_eq!(c.peek(l).map(|e| e.meta), Some(m));
            }
            prop_assert_eq!(c.iter().count(), model.len());
        }

        /// A cache never holds more lines than its capacity, never holds
        /// duplicates, and every fill of a missing line lands.
        #[test]
        fn capacity_and_uniqueness(ops in proptest::collection::vec(0u64..64, 1..200)) {
            let sets = 4u64;
            let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(sets as usize, 2));
            for op in ops {
                let l = line(op % sets, op / sets, sets);
                if !c.contains(l) {
                    c.fill(l, LineData::zeroed(), (), EvictionClass::NonReducible);
                }
                prop_assert!(c.contains(l));
            }
            prop_assert!(c.len() <= c.geometry().lines());
            let mut tags: Vec<_> = c.iter().map(|e| e.tag).collect();
            tags.sort();
            tags.dedup();
            prop_assert_eq!(tags.len(), c.len());
        }
    }
}
