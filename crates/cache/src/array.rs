//! Generic set-associative cache array with LRU and reserved-way fills.

use commtm_mem::{LineAddr, LineData};

use crate::geometry::CacheGeometry;

/// One resident cache line: tag, data, caller-defined metadata.
#[derive(Clone, Debug)]
pub struct Entry<M> {
    /// The line address this entry caches.
    pub tag: LineAddr,
    /// The cached data.
    pub data: LineData,
    /// Level-specific metadata (state, spec bits, directory info...).
    pub meta: M,
    lru: u64,
}

/// How a fill is classified for the paper's reserved-way policy
/// (Sec. III-B4): one way per set is reserved for data with permissions
/// other than U, and misses from reduction handlers always fill that way,
/// so handler misses can never evict reducible data (which would require a
/// nested reduction and could deadlock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionClass {
    /// Ordinary non-reducible data: may occupy any way.
    NonReducible,
    /// U-state data: must not occupy the reserved way.
    Reducible,
    /// A fill issued by a reduction handler or splitter: uses the reserved
    /// way only.
    Handler,
}

/// The result of a fill: the victim entry, if one had to be evicted.
#[derive(Debug)]
pub struct FillOutcome<M> {
    /// The evicted entry, for the caller to write back or abort on.
    pub victim: Option<Entry<M>>,
}

/// A set-associative array with LRU replacement, generic over per-line
/// metadata.
///
/// # Example
///
/// ```
/// use commtm_cache::{CacheArray, CacheGeometry, EvictionClass};
/// use commtm_mem::{LineAddr, LineData};
///
/// let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(2, 2));
/// c.fill(LineAddr::new(4), LineData::zeroed(), 7, EvictionClass::NonReducible);
/// assert_eq!(c.get(LineAddr::new(4)).unwrap().meta, 7);
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    slots: Vec<Option<Entry<M>>>,
    tick: u64,
}

impl<M> CacheArray<M> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(geom.lines(), || None);
        CacheArray {
            geom,
            slots,
            tick: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Looks up a line without updating recency.
    pub fn peek(&self, line: LineAddr) -> Option<&Entry<M>> {
        self.set_slots(line)
            .iter()
            .flatten()
            .find(|e| e.tag == line)
    }

    /// Looks up a line and marks it most-recently used.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut Entry<M>> {
        self.tick += 1;
        let tick = self.tick;
        let (base, ways) = self.set_range(line);
        let entry = self.slots[base..base + ways]
            .iter_mut()
            .flatten()
            .find(|e| e.tag == line);
        if let Some(e) = entry {
            e.lru = tick;
            Some(e)
        } else {
            None
        }
    }

    /// Whether a line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, evicting a victim if the set is full.
    ///
    /// Way 0 of every set is the *reserved way*: [`EvictionClass::Handler`]
    /// fills use only way 0, and [`EvictionClass::Reducible`] fills avoid
    /// it (unless the cache is direct-mapped, where reservation is
    /// meaningless and disabled).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident.
    pub fn fill(
        &mut self,
        line: LineAddr,
        data: LineData,
        meta: M,
        class: EvictionClass,
    ) -> FillOutcome<M> {
        debug_assert!(!self.contains(line), "fill of resident line {line}");
        self.tick += 1;
        let tick = self.tick;
        let (base, ways) = self.set_range(line);
        let (lo, hi) = match class {
            EvictionClass::Handler if ways > 1 => (0usize, 1usize),
            EvictionClass::Reducible if ways > 1 => (1usize, ways),
            _ => (0usize, ways),
        };

        // Prefer an invalid slot in the allowed range.
        let range = &mut self.slots[base..base + ways];
        let mut victim_way = None;
        let mut oldest = u64::MAX;
        for (w, slot) in range.iter().enumerate().take(hi).skip(lo) {
            match slot {
                None => {
                    victim_way = Some(w);
                    break;
                }
                Some(e) if e.lru < oldest => {
                    oldest = e.lru;
                    victim_way = Some(w);
                }
                Some(_) => {}
            }
        }
        let way = victim_way.expect("eviction range is never empty");
        let victim = range[way].take();
        range[way] = Some(Entry {
            tag: line,
            data,
            meta,
            lru: tick,
        });
        FillOutcome { victim }
    }

    /// Removes a line, returning its entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<Entry<M>> {
        let (base, ways) = self.set_range(line);
        for slot in &mut self.slots[base..base + ways] {
            if slot.as_ref().is_some_and(|e| e.tag == line) {
                return slot.take();
            }
        }
        None
    }

    /// Iterates all resident entries (for invariant checks and recalls).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<M>> {
        self.slots.iter().flatten()
    }

    /// Iterates all resident entries mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry<M>> {
        self.slots.iter_mut().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The way index a resident line occupies (for tests).
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        self.set_slots(line)
            .iter()
            .position(|s| s.as_ref().is_some_and(|e| e.tag == line))
    }

    fn set_range(&self, line: LineAddr) -> (usize, usize) {
        let ways = self.geom.ways();
        (self.geom.set_of(line) * ways, ways)
    }

    fn set_slots(&self, line: LineAddr) -> &[Option<Entry<M>>] {
        let (base, ways) = self.set_range(line);
        &self.slots[base..base + ways]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(set: u64, alias: u64, sets: u64) -> LineAddr {
        LineAddr::new(set + alias * sets)
    }

    #[test]
    fn fill_and_get() {
        let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(4, 2));
        let a = LineAddr::new(1);
        assert!(c
            .fill(a, LineData::splat(9), (), EvictionClass::NonReducible)
            .victim
            .is_none());
        assert_eq!(c.get(a).unwrap().data, LineData::splat(9));
        assert!(c.contains(a));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 2));
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(1), LineAddr::new(2));
        c.fill(a, LineData::zeroed(), 0, EvictionClass::NonReducible);
        c.fill(b, LineData::zeroed(), 1, EvictionClass::NonReducible);
        c.get(a); // a is now most recent; b is LRU
        let out = c.fill(d, LineData::zeroed(), 2, EvictionClass::NonReducible);
        assert_eq!(out.victim.unwrap().tag, b);
        assert!(c.contains(a) && c.contains(d));
    }

    #[test]
    fn handler_fills_use_reserved_way_only() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 4));
        for i in 0..4 {
            c.fill(
                LineAddr::new(i),
                LineData::zeroed(),
                i as u32,
                EvictionClass::NonReducible,
            );
        }
        let h = LineAddr::new(10);
        c.fill(h, LineData::zeroed(), 99, EvictionClass::Handler);
        assert_eq!(c.way_of(h), Some(0));
    }

    #[test]
    fn reducible_fills_avoid_reserved_way() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 4));
        for i in 0..8 {
            c.fill(
                LineAddr::new(i),
                LineData::zeroed(),
                0,
                EvictionClass::Reducible,
            );
            if i >= 4 {
                // Set stays at 3 resident reducible lines + empty way 0.
                assert_ne!(c.way_of(LineAddr::new(i)), Some(0));
            }
        }
        // Way 0 was never allocated by reducible fills.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn direct_mapped_disables_reservation() {
        let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(2, 1));
        let a = LineAddr::new(0);
        c.fill(a, LineData::zeroed(), (), EvictionClass::Reducible);
        assert_eq!(c.way_of(a), Some(0));
    }

    #[test]
    fn remove_returns_entry() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 2));
        let a = LineAddr::new(3);
        c.fill(a, LineData::splat(1), 5, EvictionClass::NonReducible);
        let e = c.remove(a).unwrap();
        assert_eq!(e.meta, 5);
        assert!(!c.contains(a));
        assert!(c.remove(a).is_none());
    }

    proptest! {
        /// A cache never holds more lines than its capacity, never holds
        /// duplicates, and every fill of a missing line lands.
        #[test]
        fn capacity_and_uniqueness(ops in proptest::collection::vec(0u64..64, 1..200)) {
            let sets = 4u64;
            let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::new(sets as usize, 2));
            for op in ops {
                let l = line(op % sets, op / sets, sets);
                if !c.contains(l) {
                    c.fill(l, LineData::zeroed(), (), EvictionClass::NonReducible);
                }
                prop_assert!(c.contains(l));
            }
            prop_assert!(c.len() <= c.geometry().lines());
            let mut tags: Vec<_> = c.iter().map(|e| e.tag).collect();
            tags.sort();
            tags.dedup();
            prop_assert_eq!(tags.len(), c.len());
        }
    }
}
