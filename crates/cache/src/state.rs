//! Coherence states: MESI plus the user-defined reducible state U.

use std::fmt;

/// A private cache's coherence state for a line, per the paper's Fig. 3.
///
/// The paper extends MESI with **U** (user-defined reducible): multiple
/// private caches may simultaneously hold a line in U with the same label,
/// buffering commutative updates locally.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum CohState {
    /// Invalid: no permissions.
    #[default]
    I,
    /// Shared read-only.
    S,
    /// Exclusive clean: sole copy, matches memory; silently upgradable.
    E,
    /// Modified: sole copy, dirty.
    M,
    /// User-defined reducible: one of possibly many partial copies, tagged
    /// with a label. Satisfies only labeled accesses with a matching label.
    U,
}

impl CohState {
    /// Can a conventional (unlabeled) load be satisfied locally?
    pub fn can_plain_read(self) -> bool {
        matches!(self, CohState::S | CohState::E | CohState::M)
    }

    /// Can a conventional (unlabeled) store be satisfied locally?
    ///
    /// An E-state line upgrades to M silently on a store.
    pub fn can_plain_write(self) -> bool {
        matches!(self, CohState::E | CohState::M)
    }

    /// Can a labeled access be satisfied locally, given that the line's
    /// label matches the access's? M and E satisfy all requests (Fig. 3);
    /// U satisfies only matching labeled accesses.
    pub fn can_labeled_access(self) -> bool {
        matches!(self, CohState::E | CohState::M | CohState::U)
    }

    /// Does the state confer any valid permission?
    pub fn is_valid(self) -> bool {
        self != CohState::I
    }

    /// Is this the reducible state?
    pub fn is_reducible(self) -> bool {
        self == CohState::U
    }
}

impl fmt::Display for CohState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CohState::I => "I",
            CohState::S => "S",
            CohState::E => "E",
            CohState::M => "M",
            CohState::U => "U",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_table_matches_fig3() {
        // Fig. 3: M satisfies all requests; S only conventional loads;
        // I nothing; U labeled accesses only (with a matching label).
        assert!(CohState::M.can_plain_read() && CohState::M.can_plain_write());
        assert!(CohState::M.can_labeled_access());
        assert!(CohState::E.can_plain_read() && CohState::E.can_plain_write());
        assert!(CohState::S.can_plain_read());
        assert!(!CohState::S.can_plain_write());
        assert!(!CohState::S.can_labeled_access());
        assert!(!CohState::I.can_plain_read() && !CohState::I.can_plain_write());
        assert!(CohState::U.can_labeled_access());
        assert!(!CohState::U.can_plain_read() && !CohState::U.can_plain_write());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(CohState::default(), CohState::I);
        assert!(!CohState::default().is_valid());
        assert!(CohState::U.is_reducible());
    }
}
