//! Per-line cache metadata.

use commtm_mem::LabelId;

use crate::state::CohState;

/// Speculative-access bits kept per L1 line (the paper's Fig. 5 status
/// bits). They record whether the running transaction has read, written, or
/// performed labeled operations on the line — i.e. they encode the
/// transaction's read, write, and labeled sets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecBits {
    /// Line is in the transaction's read set (conventional load).
    pub read: bool,
    /// Line is in the transaction's write set (conventional store).
    pub written: bool,
    /// Line is in the transaction's labeled set (labeled load/store/gather).
    pub labeled: bool,
    /// The label used by the transaction's labeled operations on this line.
    ///
    /// Needed when labeled operations hit an M/E-state line (which satisfies
    /// them without entering U, Fig. 3): a later downgrade-to-U must know
    /// whether the label matches to decide if it conflicts.
    pub label: Option<LabelId>,
    /// The transaction speculatively modified the line's data (via a
    /// conventional or labeled store), so the L2 holds the authoritative
    /// non-speculative value.
    pub dirty_data: bool,
}

impl SpecBits {
    /// Whether any bit is set, i.e. the line belongs to any transaction set.
    pub fn any(self) -> bool {
        self.read || self.written || self.labeled
    }

    /// Clears every bit (commit or abort).
    pub fn clear(&mut self) {
        *self = SpecBits::default();
    }
}

/// Metadata for an L1 line: speculation bits plus a dirty bit relative to
/// the private L2.
///
/// The L1 does not store a coherence state: the per-core *private* state is
/// authoritative at the L2 ([`PrivMeta`]), and the L1 mirrors its
/// permission. This removes an entire class of L1/L2 state-divergence bugs
/// while preserving the paper's split of speculative (L1) versus
/// non-speculative (L2) data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Meta {
    /// The L1 copy is newer than the L2 copy (non-speculatively dirty).
    pub dirty: bool,
    /// Speculative footprint bits.
    pub spec: SpecBits,
}

/// Metadata for a private-L2 line: the core's authoritative coherence state
/// plus the label for U-state lines and a dirty bit relative to the L3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrivMeta {
    /// The core's coherence state for the line.
    pub state: CohState,
    /// The label, when `state == CohState::U`.
    pub label: Option<LabelId>,
    /// The private copy is newer than the L3 copy.
    pub dirty: bool,
}

impl PrivMeta {
    /// A U-state entry with the given label.
    pub fn reducible(label: LabelId) -> Self {
        PrivMeta {
            state: CohState::U,
            label: Some(label),
            dirty: false,
        }
    }

    /// Whether the entry is in U with the given label.
    pub fn is_reducible_with(&self, label: LabelId) -> bool {
        self.state == CohState::U && self.label == Some(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_bits_any_and_clear() {
        let mut b = SpecBits::default();
        assert!(!b.any());
        b.labeled = true;
        assert!(b.any());
        b.clear();
        assert_eq!(b, SpecBits::default());
    }

    #[test]
    fn priv_meta_reducible() {
        let l = LabelId::new(2);
        let m = PrivMeta::reducible(l);
        assert!(m.is_reducible_with(l));
        assert!(!m.is_reducible_with(LabelId::new(1)));
        assert!(!PrivMeta::default().is_reducible_with(l));
    }
}
