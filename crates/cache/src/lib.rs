//! Set-associative cache models for the CommTM simulator.
//!
//! Provides the building blocks the protocol layer assembles into the
//! paper's three-level hierarchy (Table I):
//!
//! - [`CacheGeometry`]: sets × ways × 64-byte lines, built from a size,
//! - [`CacheArray`]: a generic set-associative array with LRU replacement
//!   and the paper's *reserved-way* policy (one way per set is reserved for
//!   non-reducible data so reduction-handler misses can always fill without
//!   evicting U-state lines — Sec. III-B4, deadlock avoidance),
//! - [`CohState`]: MESI plus the user-defined reducible state **U**
//!   (Fig. 3),
//! - [`L1Meta`] / [`PrivMeta`]: per-line metadata, including the speculative
//!   read/write/labeled bits that track transaction footprints (Fig. 5).

mod array;
mod geometry;
mod meta;
mod state;

pub use array::{CacheArray, Entry, EvictionClass, FillOutcome, Slot};
pub use geometry::CacheGeometry;
pub use meta::{L1Meta, PrivMeta, SpecBits};
pub use state::CohState;
