//! The eager-lazy HTM execution engine.
//!
//! This crate drives per-thread [`commtm_tx::Program`]s against the
//! [`commtm_protocol::MemSystem`], implementing the paper's baseline HTM
//! (Sec. III-B1) and its CommTM extension:
//!
//! - transactions are timestamped at first begin and **retain their
//!   timestamp across retries**, so they age and eventually win
//!   timestamp-based conflict resolution (livelock freedom),
//! - aborted transactions restart after randomized exponential backoff,
//! - a transaction aborted for issuing an unlabeled access to its own
//!   speculatively-modified labeled data retries with its labeled
//!   operations demoted to conventional ones (Sec. III-B4),
//! - under [`Scheme::Baseline`] *all* labeled operations are demoted, which
//!   is exactly how the paper compares the two systems: the same program
//!   with labels ignored runs on a conventional eager-lazy HTM.
//!
//! The engine-side cycle accounting implements the paper's Fig. 17/18
//! taxonomies: every cycle is non-transactional, transactional-committed,
//! or transactional-aborted (wasted), and wasted cycles are attributed to
//! the dependency type that caused the abort.

mod engine;
mod stats;

pub use engine::{CoreCheckpoint, CoreExec, HtmConfig, Scheme, StepResult, TsSource};
pub use stats::CoreStats;
