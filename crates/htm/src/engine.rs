//! Per-core transactional execution.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use commtm_mem::CoreId;
use commtm_protocol::{AbortKind, AccessOp, MemOp, MemSystem, ProtoEvent, TxTable};
use commtm_tx::{
    Block, BlockRunner, Ctl, CtlCtx, Env, MemPort, OpResult, Program, StepOutcome, TxOp, UserState,
};

use crate::stats::CoreStats;

/// Which conflict-detection scheme the machine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's conventional eager-lazy HTM: labeled operations are
    /// demoted to conventional loads/stores (gathers become loads), so
    /// commutative updates serialize.
    Baseline,
    /// CommTM: labeled operations use the U state, reductions and gathers.
    CommTm,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct HtmConfig {
    /// Conflict-detection scheme.
    pub scheme: Scheme,
    /// Base window (cycles) for randomized exponential backoff.
    pub backoff_base: u64,
    /// Cap on the backoff exponent.
    pub backoff_cap: u32,
    /// Number of general-purpose registers per core.
    pub regs: usize,
    /// Fixed cycles charged per transaction attempt for `tx_begin` +
    /// `tx_end` (TSX-like overhead; keeps single-thread transactions from
    /// being unrealistically free).
    pub tx_overhead: u64,
}

impl HtmConfig {
    /// Defaults used throughout the evaluation.
    pub fn new(scheme: Scheme) -> Self {
        HtmConfig {
            scheme,
            backoff_base: 16,
            backoff_cap: 8,
            regs: 32,
            tx_overhead: 20,
        }
    }
}

/// The result of stepping a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepResult {
    /// The core made progress and should be rescheduled at its new clock.
    Ran,
    /// The core's program is finished.
    Finished,
}

/// Where transaction timestamps come from.
///
/// The serial scheduler draws from a plain global counter (`&mut u64`
/// implements this); the epoch-parallel engine hands each worker a
/// placeholder source and reassigns real timestamps afterwards in global
/// `(clock, core)` order, which is exactly the order the serial scheduler
/// would have drawn them in.
pub trait TsSource {
    /// Draws the timestamp for a transaction that `core` begins at local
    /// time `clock` (the clock *before* the begin overhead is charged —
    /// i.e. the step's scheduling key).
    fn next_ts(&mut self, core: CoreId, clock: u64) -> u64;
}

impl TsSource for u64 {
    fn next_ts(&mut self, _core: CoreId, _clock: u64) -> u64 {
        let t = *self;
        *self += 1;
        t
    }
}

/// A snapshot of one core's mutable execution state, taken with
/// [`CoreExec::checkpoint`] and applied back with [`CoreExec::restore`].
///
/// Everything is captured: registers, user state, the replay log,
/// transaction flags, RNG, clock, statistics — and the program. The
/// program is logically immutable during a run, but [`CoreExec::step`]
/// temporarily moves it out of the core while a block borrows it, so a
/// panic unwinding through a speculative step (a worker observing stale
/// foreign state in the epoch-parallel engine) can leave the core with an
/// empty program; restoring the checkpoint heals that too. The epoch
/// engine snapshots every live core before a speculative epoch so a
/// conflicted epoch can be replayed serially from an identical starting
/// point.
pub struct CoreCheckpoint {
    program: Program,
    env: Env,
    runner: BlockRunner,
    block_idx: usize,
    block_started: bool,
    block_start_regs: Vec<u64>,
    in_tx: bool,
    ts: Option<u64>,
    demote_labels: bool,
    attempts: u32,
    pending_abort: Option<AbortKind>,
    clock: u64,
    attempt_cycles: u64,
    rng: StdRng,
    stats: CoreStats,
    done: bool,
}

/// One simulated core executing a [`Program`] transactionally.
///
/// The scheduler steps cores in minimum-clock order; each step runs one
/// replay pass of the current block (at most one new memory operation) or
/// handles a pending abort. Asynchronous aborts (this core lost a conflict
/// to another core's request) arrive via [`CoreExec::notify_aborted`].
pub struct CoreExec {
    core: CoreId,
    program: Program,
    env: Env,
    runner: BlockRunner,
    block_idx: usize,
    block_started: bool,
    block_start_regs: Vec<u64>,
    in_tx: bool,
    ts: Option<u64>,
    demote_labels: bool,
    attempts: u32,
    pending_abort: Option<AbortKind>,
    clock: u64,
    attempt_cycles: u64,
    rng: StdRng,
    stats: CoreStats,
    done: bool,
}

impl CoreExec {
    /// Creates a core executing `program` with the given per-thread user
    /// state and RNG seed.
    pub fn new(
        core: CoreId,
        program: Program,
        user: impl UserState,
        seed: u64,
        cfg: &HtmConfig,
    ) -> Self {
        let done = program.is_empty();
        CoreExec {
            core,
            program,
            env: Env::new(cfg.regs, user),
            runner: BlockRunner::new(),
            block_idx: 0,
            block_started: false,
            block_start_regs: Vec::new(),
            in_tx: false,
            ts: None,
            demote_labels: false,
            attempts: 0,
            pending_abort: None,
            clock: 0,
            attempt_cycles: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: CoreStats::default(),
            done,
        }
    }

    /// The core's id.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The core's local clock (cycles).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Whether the program has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The core's execution environment (post-run inspection).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Records that another core's request aborted this core's running
    /// transaction (its cache and [`TxTable`] state were already handled by
    /// the protocol). The next step performs backoff and restarts the
    /// block.
    pub fn notify_aborted(&mut self, cause: AbortKind) {
        debug_assert!(self.in_tx, "abort notification outside a transaction");
        self.pending_abort.get_or_insert(cause);
    }

    /// Snapshots the core's mutable state (see [`CoreCheckpoint`]).
    pub fn checkpoint(&self) -> CoreCheckpoint {
        CoreCheckpoint {
            program: self.program.clone(),
            env: self.env.clone(),
            runner: self.runner.clone(),
            block_idx: self.block_idx,
            block_started: self.block_started,
            block_start_regs: self.block_start_regs.clone(),
            in_tx: self.in_tx,
            ts: self.ts,
            demote_labels: self.demote_labels,
            attempts: self.attempts,
            pending_abort: self.pending_abort,
            clock: self.clock,
            attempt_cycles: self.attempt_cycles,
            rng: self.rng.clone(),
            stats: self.stats.clone(),
            done: self.done,
        }
    }

    /// Restores state captured by [`CoreExec::checkpoint`] on this same
    /// core.
    pub fn restore(&mut self, cp: CoreCheckpoint) {
        let CoreCheckpoint {
            program,
            env,
            runner,
            block_idx,
            block_started,
            block_start_regs,
            in_tx,
            ts,
            demote_labels,
            attempts,
            pending_abort,
            clock,
            attempt_cycles,
            rng,
            stats,
            done,
        } = cp;
        self.program = program;
        self.env = env;
        self.runner = runner;
        if self.runner.in_progress() {
            // The restored log prefix is committed history; re-replaying
            // it on every remaining pass would be quadratic, so ask the
            // runner to continue via a suspension regardless of length.
            self.runner.resume_hint();
        }
        self.block_idx = block_idx;
        self.block_started = block_started;
        self.block_start_regs = block_start_regs;
        self.in_tx = in_tx;
        self.ts = ts;
        self.demote_labels = demote_labels;
        self.attempts = attempts;
        self.pending_abort = pending_abort;
        self.clock = clock;
        self.attempt_cycles = attempt_cycles;
        self.rng = rng;
        self.stats = stats;
        self.done = done;
    }

    /// The raw timestamp held for the current block attempt, if any.
    /// Engine support: the epoch-parallel scheduler reads placeholder
    /// timestamps back for reassignment (see [`TsSource`]).
    pub fn held_ts(&self) -> Option<u64> {
        self.ts
    }

    /// Rewrites the held timestamp in place (engine support — pairs with
    /// [`CoreExec::held_ts`]; normal runs never need this).
    pub fn rewrite_held_ts(&mut self, ts: u64) {
        debug_assert!(self.ts.is_some(), "rewriting an absent timestamp");
        self.ts = Some(ts);
    }

    /// Runs one scheduler step, advancing the core's clock.
    pub fn step(
        &mut self,
        sys: &mut MemSystem,
        txs: &mut TxTable,
        cfg: &HtmConfig,
        next_ts: &mut dyn TsSource,
        events_out: &mut Vec<ProtoEvent>,
    ) -> StepResult {
        if self.done {
            return StepResult::Finished;
        }
        // Stamp the step's scheduling key: every trace event this step
        // emits carries (clock-at-entry, core), the engine-independent
        // commit-order key.
        sys.tracer_mut().step(self.core, self.clock);
        if let Some(cause) = self.pending_abort.take() {
            self.handle_abort(cause, cfg, sys);
            return StepResult::Ran;
        }

        // Borrow the program through a temporary move instead of cloning
        // the block (an `Arc` bump/release pair on every scheduler step).
        let program = std::mem::take(&mut self.program);
        match program.block(self.block_idx) {
            Block::Ctl(_) => {
                let n = self.run_ctl_chain(&program);
                self.clock += n;
                self.stats.nontx_cycles += n;
            }
            Block::Tx(body) => {
                self.run_body(&program, body, true, sys, txs, cfg, next_ts, events_out)
            }
            Block::Plain(body) => {
                self.run_body(&program, body, false, sys, txs, cfg, next_ts, events_out)
            }
        }
        self.program = program;

        if self.done {
            StepResult::Finished
        } else {
            StepResult::Ran
        }
    }

    /// Runs consecutive Ctl blocks (1 cycle each), bounded per step so that
    /// control-only spin loops cannot stall the scheduler.
    fn run_ctl_chain(&mut self, program: &Program) -> u64 {
        const MAX_CHAIN: u64 = 1024;
        let mut n = 0;
        while n < MAX_CHAIN && !self.done {
            let Block::Ctl(f) = program.block(self.block_idx) else {
                break;
            };
            n += 1;
            let rng = &mut self.rng;
            let mut draw = move || rng.next_u64();
            let ctl = {
                let (regs, user) = self.env.split_mut();
                let mut ctx = CtlCtx::new(regs, user, &mut draw);
                f(&mut ctx)
            };
            match ctl {
                Ctl::Next => self.advance_to(self.block_idx + 1, program.len()),
                Ctl::Jump(i) => {
                    assert!(i < program.len(), "jump target {i} out of program bounds");
                    self.advance_to(i, program.len());
                }
                Ctl::Done => self.finish(),
            }
        }
        n.max(1)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_body(
        &mut self,
        program: &Program,
        body: &commtm_tx::BlockFn,
        is_tx: bool,
        sys: &mut MemSystem,
        txs: &mut TxTable,
        cfg: &HtmConfig,
        next_ts: &mut dyn TsSource,
        events_out: &mut Vec<ProtoEvent>,
    ) {
        if !self.block_started {
            self.block_start_regs.clear();
            self.block_start_regs.extend_from_slice(&self.env.regs);
            self.block_started = true;
            if is_tx {
                // Assign (or retain, across retries) the timestamp. The
                // draw is keyed by (core, clock-at-begin) so alternative
                // timestamp sources can reproduce the serial draw order.
                let ts = match self.ts {
                    Some(t) => t,
                    None => {
                        let t = next_ts.next_ts(self.core, self.clock);
                        self.ts = Some(t);
                        t
                    }
                };
                txs.begin(self.core, ts);
                sys.tracer_mut().begin(ts);
                self.in_tx = true;
                // tx_begin/tx_end overhead, charged once per attempt.
                self.clock += cfg.tx_overhead;
                self.attempt_cycles += cfg.tx_overhead;
            }
        }

        let demote = cfg.scheme == Scheme::Baseline || self.demote_labels;
        let mut abort_cause = None;
        let out = {
            let mut port = EnginePort {
                sys,
                txs,
                core: self.core,
                demote,
                stats: &mut self.stats,
                rng: &mut self.rng,
                events: events_out,
                abort_cause: &mut abort_cause,
            };
            self.runner.step(body, &mut self.env, &mut port)
        };

        let cycles = out.cycles();
        self.clock += cycles;
        if is_tx {
            self.attempt_cycles += cycles;
        } else {
            self.stats.nontx_cycles += cycles;
        }

        match out {
            StepOutcome::Yield { .. } => {}
            StepOutcome::Done { .. } => {
                if is_tx {
                    if sys.tracer().is_debug() {
                        eprintln!("[{:?}] COMMIT clock={}", self.core, self.clock);
                    }
                    sys.tracer_mut().commit();
                    sys.commit_core(self.core);
                    txs.end(self.core);
                    self.in_tx = false;
                    self.ts = None;
                    self.demote_labels = false;
                    self.attempts = 0;
                    self.stats.commits += 1;
                    self.stats.committed_cycles += self.attempt_cycles;
                    self.attempt_cycles = 0;
                }
                self.advance_to(self.block_idx + 1, program.len());
            }
            StepOutcome::Abort { .. } => {
                assert!(is_tx, "a non-transactional block cannot abort");
                let cause = abort_cause.unwrap_or(AbortKind::Eviction);
                self.handle_abort(cause, cfg, sys);
            }
        }
    }

    /// Backoff-and-restart after an abort (the protocol already rolled the
    /// transaction back).
    fn handle_abort(&mut self, cause: AbortKind, cfg: &HtmConfig, sys: &mut MemSystem) {
        if sys.tracer().is_debug() {
            eprintln!(
                "[{:?}] ABORT cause={:?} clock={}",
                self.core, cause, self.clock
            );
        }
        // Emits the abort event and consumes the protocol's pending
        // attribution note (conflicting core + line) for this victim.
        sys.tracer_mut().abort(self.core, cause);
        self.runner.reset();
        self.env.regs.copy_from_slice(&self.block_start_regs);
        self.in_tx = false;
        // The retry must re-enter the transaction (tx_begin again, setting
        // the TxTable entry); the timestamp in `self.ts` is retained so the
        // transaction ages and eventually wins arbitration.
        self.block_started = false;
        self.attempts += 1;
        if cause == AbortKind::SelfDemote {
            // Sec. III-B4: retry with labeled operations demoted.
            self.demote_labels = true;
        }
        let exp = self.attempts.min(cfg.backoff_cap);
        let window = cfg.backoff_base.checked_shl(exp).unwrap_or(u64::MAX).max(2);
        let backoff = self.rng.random_range(1..window);
        let wasted = self.attempt_cycles + backoff;
        let bucket = CoreStats::bucket_index(cause.bucket());
        self.stats.aborts += 1;
        self.stats.aborts_by_bucket[bucket] += 1;
        self.stats.aborted_cycles += wasted;
        self.stats.wasted_by_bucket[bucket] += wasted;
        self.stats.backoff_cycles += backoff;
        self.attempt_cycles = 0;
        self.clock += backoff;
    }

    // `program_len` is passed in because the program is temporarily moved
    // out of `self` while a block borrows it (see `step`).
    fn advance_to(&mut self, idx: usize, program_len: usize) {
        self.block_idx = idx;
        self.block_started = false;
        self.runner.reset();
        if self.block_idx >= program_len {
            self.finish();
        }
    }

    fn finish(&mut self) {
        if !self.done {
            self.done = true;
            self.stats.finish_cycle = self.clock;
        }
    }
}

impl std::fmt::Debug for CoreExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreExec")
            .field("core", &self.core)
            .field("clock", &self.clock)
            .field("block", &self.block_idx)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// Adapter mapping [`TxOp`]s to protocol accesses, applying label demotion
/// and collecting events.
struct EnginePort<'a> {
    sys: &'a mut MemSystem,
    txs: &'a mut TxTable,
    core: CoreId,
    demote: bool,
    stats: &'a mut CoreStats,
    rng: &'a mut StdRng,
    events: &'a mut Vec<ProtoEvent>,
    abort_cause: &'a mut Option<AbortKind>,
}

impl MemPort for EnginePort<'_> {
    fn op(&mut self, op: TxOp) -> OpResult {
        let (mem_op, addr) = match op {
            TxOp::Load(a) => {
                self.stats.plain_ops += 1;
                (MemOp::Load, a)
            }
            TxOp::Store(a, v) => {
                self.stats.plain_ops += 1;
                (MemOp::Store(v), a)
            }
            TxOp::LoadL(l, a) => {
                self.stats.labeled_ops += 1;
                (
                    if self.demote {
                        MemOp::Load
                    } else {
                        MemOp::LoadL(l)
                    },
                    a,
                )
            }
            TxOp::StoreL(l, a, v) => {
                self.stats.labeled_ops += 1;
                (
                    if self.demote {
                        MemOp::Store(v)
                    } else {
                        MemOp::StoreL(l, v)
                    },
                    a,
                )
            }
            TxOp::Gather(l, a) => {
                self.stats.labeled_ops += 1;
                self.stats.gather_ops += 1;
                (
                    if self.demote {
                        MemOp::Load
                    } else {
                        MemOp::Gather(l)
                    },
                    a,
                )
            }
        };
        if self.sys.tracer().is_enabled() {
            // Record the *issued* operation (pre-demotion), so traces under
            // the baseline scheme still show which accesses were labeled.
            let (trace_op, labeled) = match op {
                TxOp::Load(_) => (AccessOp::Load, false),
                TxOp::Store(..) => (AccessOp::Store, false),
                TxOp::LoadL(..) => (AccessOp::LoadL, true),
                TxOp::StoreL(..) => (AccessOp::StoreL, true),
                TxOp::Gather(..) => (AccessOp::Gather, true),
            };
            self.sys.tracer_mut().access(
                addr.raw(),
                addr.line(),
                trace_op,
                labeled,
                labeled && self.demote,
            );
        }
        if self.sys.tracer().is_debug() {
            eprintln!(
                "    [pre ] [{:?}] {:?} @{:x} st={:?}",
                self.core,
                mem_op,
                addr.raw(),
                self.sys.debug_priv(self.core, addr.line())
            );
        }
        // Events append straight into the engine's reusable buffer
        // (threaded down from `Machine::run`): no per-access allocation.
        let before = self.events.len();
        let acc = self
            .sys
            .access_into(self.core, mem_op, addr, self.txs, self.events);
        if self.sys.tracer().is_debug() {
            eprintln!(
                "[{:?}] op={:?} @{:x} -> v={} abort={:?} ev={:?} ts={:?} st={:?}",
                self.core,
                mem_op,
                addr.raw(),
                acc.value,
                acc.self_abort,
                &self.events[before..],
                self.txs.active_ts(self.core),
                self.sys.debug_priv(self.core, addr.line())
            );
        }
        if let Some(k) = acc.self_abort {
            *self.abort_cause = Some(k);
        }
        OpResult {
            value: acc.value,
            latency: acc.latency,
            aborted: acc.self_abort.is_some(),
        }
    }

    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
