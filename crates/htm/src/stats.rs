//! Engine-side per-core statistics (the paper's Fig. 17/18 taxonomies).

use commtm_protocol::WasteBucket;

/// Per-core execution statistics.
///
/// Cycle classes partition a core's time exactly as the paper's Fig. 17:
/// non-transactional, transactional-committed (useful), and
/// transactional-aborted (wasted, including backoff). Wasted cycles are
/// further attributed to Fig. 18's dependency buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Cycles outside transactions (including control blocks).
    pub nontx_cycles: u64,
    /// Cycles in transaction attempts that committed.
    pub committed_cycles: u64,
    /// Cycles in transaction attempts that aborted, plus backoff.
    pub aborted_cycles: u64,
    /// The backoff portion of `aborted_cycles`.
    pub backoff_cycles: u64,
    /// Wasted cycles per Fig. 18 bucket (indexed by
    /// [`WasteBucket::ALL`] order).
    pub wasted_by_bucket: [u64; 4],
    /// Abort counts per Fig. 18 bucket.
    pub aborts_by_bucket: [u64; 4],
    /// Conventional memory operations issued by the program.
    pub plain_ops: u64,
    /// Labeled memory operations issued by the program (loads, stores and
    /// gathers), counted before any demotion — this is the paper's
    /// "fraction of labeled instructions" numerator.
    pub labeled_ops: u64,
    /// Gather requests issued by the program (subset of `labeled_ops`).
    pub gather_ops: u64,
    /// The core's clock when its program finished (0 if still running).
    pub finish_cycle: u64,
}

impl CoreStats {
    /// Total cycles attributed to this core.
    pub fn total_cycles(&self) -> u64 {
        self.nontx_cycles + self.committed_cycles + self.aborted_cycles
    }

    /// Index of a bucket in the `*_by_bucket` arrays.
    pub fn bucket_index(bucket: WasteBucket) -> usize {
        WasteBucket::ALL
            .iter()
            .position(|b| *b == bucket)
            .expect("bucket in ALL")
    }

    /// Adds another core's counters into this one (aggregation).
    pub fn merge(&mut self, other: &CoreStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.nontx_cycles += other.nontx_cycles;
        self.committed_cycles += other.committed_cycles;
        self.aborted_cycles += other.aborted_cycles;
        self.backoff_cycles += other.backoff_cycles;
        for i in 0..4 {
            self.wasted_by_bucket[i] += other.wasted_by_bucket[i];
            self.aborts_by_bucket[i] += other.aborts_by_bucket[i];
        }
        self.plain_ops += other.plain_ops;
        self.labeled_ops += other.labeled_ops;
        self.gather_ops += other.gather_ops;
        self.finish_cycle = self.finish_cycle.max(other.finish_cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_stable() {
        assert_eq!(CoreStats::bucket_index(WasteBucket::ReadAfterWrite), 0);
        assert_eq!(CoreStats::bucket_index(WasteBucket::WriteAfterRead), 1);
        assert_eq!(CoreStats::bucket_index(WasteBucket::GatherAfterLabeled), 2);
        assert_eq!(CoreStats::bucket_index(WasteBucket::Others), 3);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = CoreStats {
            commits: 1,
            nontx_cycles: 10,
            finish_cycle: 5,
            ..Default::default()
        };
        let b = CoreStats {
            commits: 2,
            nontx_cycles: 20,
            finish_cycle: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.nontx_cycles, 30);
        assert_eq!(a.finish_cycle, 9);
        assert_eq!(a.total_cycles(), 30);
    }
}
